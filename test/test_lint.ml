(* Tests for Gb_lint: the tokenizer's lexical corners, one positive and
   one negative case per rule, pragma and allowlist semantics, and —
   the check that keeps the whole PR honest — that the repo's own
   sources lint clean. *)

module Tokenizer = Gb_lint.Tokenizer
module Rules = Gbisect.Lint_rules
module Lint = Gbisect.Lint
module Resolve = Gb_lint.Resolve
module Program = Gbisect.Lint_program
module Graph_rules = Gb_lint.Graph_rules

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let tokens src =
  Array.to_list (Tokenizer.tokenize src).Tokenizer.tokens
  |> List.map (fun p -> p.Tokenizer.tok)

let comments src = (Tokenizer.tokenize src).Tokenizer.comments

(* Findings for [src] pretended to live at [file] (default: library
   code, where every rule applies). *)
let findings ?(file = "lib/fixture/code.ml") src =
  Rules.check_source ~file src

let rules_of fs = List.map (fun f -> f.Rules.rule) fs

let check_rules label expected fs =
  Alcotest.(check (list string))
    label
    (List.sort String.compare expected)
    (List.sort String.compare (rules_of fs))

(* --- Tokenizer ------------------------------------------------------------- *)

let tokenizer_tests =
  [
    case "identifiers, modules, numbers, symbols" (fun () ->
        Alcotest.(check bool)
          "tokens" true
          (tokens "let x = Foo.bar 42"
          = [
              Tokenizer.Ident "let";
              Tokenizer.Ident "x";
              Tokenizer.Sym "=";
              Tokenizer.Uident "Foo";
              Tokenizer.Sym ".";
              Tokenizer.Ident "bar";
              Tokenizer.Number "42";
            ]));
    case "comments produce no tokens and are collected" (fun () ->
        let src = "let a = 1\n(* Random.int inside a comment *)\nlet b = 2\n" in
        check_bool "no Random token" true
          (not (List.mem (Tokenizer.Uident "Random") (tokens src)));
        match comments src with
        | [ c ] ->
            check_int "start line" 2 c.Tokenizer.c_start;
            check_int "end line" 2 c.Tokenizer.c_end;
            check_bool "text kept" true
              (Helpers.contains c.Tokenizer.c_text "Random.int")
        | cs -> Alcotest.failf "expected 1 comment, got %d" (List.length cs));
    case "nested comments close at the right depth" (fun () ->
        let src = "(* outer (* inner *) still outer *) let x = 1" in
        check_bool "x survives" true (List.mem (Tokenizer.Ident "x") (tokens src));
        check_int "one comment" 1 (List.length (comments src)));
    case "a string inside a comment hides a close-comment" (fun () ->
        (* Per the real lexer, a close-comment sequence inside a
           commented string literal does not end the comment. *)
        let src = "(* tricky \" *) \" end *) let y = 2" in
        check_bool "y survives" true (List.mem (Tokenizer.Ident "y") (tokens src)));
    case "string literals keep content, escapes protected" (fun () ->
        match tokens {|let s = "a\"b *) c"|} with
        | [ _; _; _; Tokenizer.Str s ] ->
            check_bool "escaped quote inside" true (Helpers.contains s "b *) c")
        | _ -> Alcotest.fail "expected one string token");
    case "quoted strings have no escapes" (fun () ->
        match tokens "let s = {id|raw \\ \" content|id}" with
        | [ _; _; _; Tokenizer.Str s ] ->
            Alcotest.(check string) "verbatim" {|raw \ " content|} s
        | _ -> Alcotest.fail "expected one quoted-string token");
    case "char literals versus type variables and primes" (fun () ->
        check_bool "plain char" true
          (List.mem (Tokenizer.Chr "a") (tokens "let c = 'a'"));
        check_bool "escaped quote char" true
          (List.mem (Tokenizer.Chr "\\'") (tokens "let c = '\\''"));
        check_bool "newline escape" true
          (List.mem (Tokenizer.Chr "\\n") (tokens "let c = '\\n'"));
        (* 'a in a type is not a char literal; x' keeps its prime *)
        check_bool "type variable" true
          (not
             (List.exists
                (function Tokenizer.Chr _ -> true | _ -> false)
                (tokens "type 'a t = 'a list")));
        check_bool "prime suffix" true
          (List.mem (Tokenizer.Ident "x'") (tokens "let x' = x")));
    case "positions are 1-based lines" (fun () ->
        let t = Tokenizer.tokenize "let a = 1\nlet b = 2\n" in
        let lines =
          Array.to_list t.Tokenizer.tokens
          |> List.filter_map (fun p ->
                 match p.Tokenizer.tok with
                 | Tokenizer.Ident ("a" | "b") -> Some p.Tokenizer.line
                 | _ -> None)
        in
        Alcotest.(check (list int)) "lines" [ 1; 2 ] lines);
    case "tokenize never raises on unterminated input" (fun () ->
        ignore (tokens "(* never closed");
        ignore (tokens "let s = \"never closed");
        ignore (tokens "let s = {|never closed"));
  ]

(* --- Rules: one positive and the telling negatives per rule ---------------- *)

let rule_tests =
  [
    case "no-ambient-random fires on Random.*" (fun () ->
        check_rules "positive" [ "no-ambient-random" ]
          (findings "let x = Random.int 5");
        check_rules "other module" [] (findings "let x = Rng.int rng 5"));
    case "no-wall-clock fires on Sys.time and Unix.gettimeofday" (fun () ->
        check_rules "sys" [ "no-wall-clock" ] (findings "let t = Sys.time ()");
        check_rules "unix" [ "no-wall-clock" ]
          (findings "let t = Unix.gettimeofday ()");
        check_rules "clock is fine" [] (findings "let t = Clock.now ()"));
    case "no-marshal fires on Marshal" (fun () ->
        check_rules "positive" [ "no-marshal" ]
          (findings "let s = Marshal.to_string x []"));
    case "no-hashtbl-hash fires on Hashtbl.hash" (fun () ->
        check_rules "positive" [ "no-hashtbl-hash" ]
          (findings "let h = Hashtbl.hash x");
        check_rules "find is fine" [] (findings "let v = Hashtbl.find t k"));
    case "no-poly-compare: bare and Stdlib.compare, not typed ones" (fun () ->
        check_rules "bare" [ "no-poly-compare" ]
          (findings "let xs = List.sort compare xs");
        check_rules "stdlib" [ "no-poly-compare" ]
          (findings "let xs = List.sort Stdlib.compare xs");
        check_rules "typed" []
          (findings "let xs = List.sort Int.compare xs");
        check_rules "labelled arg" []
          (findings "let x = best ~compare:(fun a b -> Int.compare a b) xs");
        check_rules "definition" [] (findings "let compare a b = Int.compare a b"));
    case "no-float-format: lib-only, %% escapes, hex floats exempt" (fun () ->
        check_rules "positive" [ "no-float-format" ]
          (findings {|let s = Printf.sprintf "%.2f" x|});
        check_rules "ints fine" [] (findings {|let s = Printf.sprintf "%d" x|});
        check_rules "escaped percent" []
          (findings {|let s = Printf.sprintf "100%%fun" ()|});
        check_rules "hex float is exact" []
          (findings {|let s = Printf.sprintf "%h" x|});
        check_rules "not in executables" []
          (findings ~file:"bench/main.ml" {|let s = Printf.sprintf "%.2f" x|}));
    case "no-stdout-in-lib: lib-only" (fun () ->
        check_rules "positive" [ "no-stdout-in-lib" ]
          (findings {|let () = print_string "hi"|});
        check_rules "stderr fine" []
          (findings {|let () = Printf.eprintf "hi"|});
        check_rules "executables may print" []
          (findings ~file:"bin/cli.ml" {|let () = print_string "hi"|}));
    case "no-exit-in-lib: lib-only" (fun () ->
        check_rules "positive" [ "no-exit-in-lib" ] (findings "let () = exit 1");
        check_rules "executables may exit" []
          (findings ~file:"bin/cli.ml" "let () = exit 1"));
    case "no-naked-mutable-global: top-level refs and tables" (fun () ->
        check_rules "ref" [ "no-naked-mutable-global" ] (findings "let r = ref 0");
        check_rules "hashtbl" [ "no-naked-mutable-global" ]
          (findings "let t = Hashtbl.create 16");
        check_rules "atomic fine" [] (findings "let r = Atomic.make 0");
        check_rules "local ref fine" []
          (findings "let f () =\n  let r = ref 0 in\n  !r");
        check_rules "ref in type annotation fine" []
          (findings "let k : int ref option Key.t = Key.make (fun () -> None)");
        check_rules "ref under fun fine" []
          (findings "let make = fun () -> ref 0"));
    case "rules never fire inside comments or strings" (fun () ->
        check_rules "comment" [] (findings "(* let x = Random.int 5 *) let a = 1");
        check_rules "string" [] (findings {|let doc = "Random.int, Sys.time"|}));
    case "mli interfaces are not scanned for impl-only rules" (fun () ->
        (* value specs mention ref types freely *)
        check_rules "mli ref" []
          (findings ~file:"lib/x/thing.mli" "val cell : int ref"));
  ]

(* --- Pragmas and the allowlist --------------------------------------------- *)

let pragma_tests =
  [
    case "a pragma with a reason suppresses the next line" (fun () ->
        check_rules "suppressed" []
          (findings
             "(* lint: allow no-ambient-random — fixture exercises the pragma *)\n\
              let x = Random.int 5"));
    case "a pragma on the same line suppresses too" (fun () ->
        check_rules "same line" []
          (findings
             "let x = Random.int 5 (* lint: allow no-ambient-random — inline *)"));
    case "the reason is mandatory" (fun () ->
        check_rules "malformed + still fires" [ "no-ambient-random"; "pragma" ]
          (findings "(* lint: allow no-ambient-random *)\nlet x = Random.int 5"));
    case "unknown rules are reported" (fun () ->
        check_rules "unknown" [ "pragma" ]
          (findings "(* lint: allow no-such-rule — why not *)\nlet x = 1"));
    case "an unused pragma is reported" (fun () ->
        check_rules "unused" [ "pragma" ]
          (findings "(* lint: allow no-ambient-random — nothing here *)\nlet x = 1");
        match findings "(* lint: allow no-ambient-random — nothing *)\nlet x = 1" with
        | [ f ] -> check_bool "warning" true (f.Rules.severity = Rules.Warning)
        | _ -> Alcotest.fail "expected exactly the unused-pragma finding");
    case "a pragma only suppresses its own rule" (fun () ->
        (* the mismatched pragma also shows up as unused *)
        check_rules "wrong rule named" [ "no-wall-clock"; "pragma" ]
          (findings
             "(* lint: allow no-ambient-random — wrong rule *)\nlet t = Sys.time ()"));
    case "allowlist: the owning module is exempt" (fun () ->
        check_rules "prng may use Random" []
          (findings ~file:"lib/prng/rng.ml" "let x = Random.int 5");
        check_rules "clock may read the wall clock" []
          (findings ~file:"lib/obs/clock.ml" "let source = Atomic.make Sys.time");
        check_rules "others may not" [ "no-ambient-random" ]
          (findings ~file:"lib/kl/kl.ml" "let x = Random.int 5"));
    case "every allowlist rule name is real" (fun () ->
        List.iter
          (fun (_, rules) -> List.iter (fun r -> check_bool r true (Rules.known_rule r)) rules)
          Rules.allowlist);
  ]

(* --- Extractor: adversarial shapes ------------------------------------------ *)

let extract src = Resolve.extract (Tokenizer.tokenize src)
let def_names x = List.map (fun d -> d.Resolve.d_name) x.Resolve.x_defs

let extractor_tests =
  [
    case "functor bodies contribute qualified defs" (fun () ->
        let x =
          extract
            "module Make (X : S) = struct\n\
            \  let run g = X.go g\n\
             end\n"
        in
        check_bool "Make.run extracted" true (List.mem "Make.run" (def_names x)));
    case "first-class module arguments do not derail the head" (fun () ->
        let x = extract "let solve (module M : Solver) g = M.run g\n" in
        check_bool "solve extracted" true (List.mem "solve" (def_names x)));
    case "let-open and local-open targets are collected file-wide" (fun () ->
        let x =
          extract
            "let a g = let open Gb_kl.Kl in one_pass g\n\
             let b g = Gb_anneal.Sa.(plateau g)\n"
        in
        check_bool "let open" true
          (List.mem [ "Gb_kl"; "Kl" ] x.Resolve.x_opens);
        check_bool "local open" true
          (List.mem [ "Gb_anneal"; "Sa" ] x.Resolve.x_opens));
    case "shadowed module aliases keep the earlier binding first" (fun () ->
        let x = extract "module K = Gb_kl.Kl\nmodule K = Gb_anneal.Sa\nlet f g = K.go g\n" in
        (match List.assoc_opt "K" x.Resolve.x_aliases with
        | Some [ "Gb_kl"; "Kl" ] -> ()
        | Some other ->
            Alcotest.failf "first binding should win, got %s"
              (String.concat "." other)
        | None -> Alcotest.fail "alias K not extracted");
        check_int "both recorded" 2
          (List.length
             (List.filter (fun (n, _) -> n = "K") x.Resolve.x_aliases)));
    case "operator definitions are named and recognized" (fun () ->
        let x = extract "let ( <+> ) a b = a + b\n" in
        (match def_names x with
        | [ name ] ->
            check_bool "operator name" true (Resolve.is_operator_name name)
        | ds -> Alcotest.failf "expected 1 def, got %d" (List.length ds));
        check_bool "plain name is not an operator" true
          (not (Resolve.is_operator_name "run")));
    case "rng parameters and mutable module state are marked" (fun () ->
        let x =
          extract
            "let cell = ref 0\n\
             let kernel rng g = step rng g\n\
             let local () = let c = ref 0 in !c\n"
        in
        let find n = List.find (fun d -> d.Resolve.d_name = n) x.Resolve.x_defs in
        check_bool "cell is mutable state" true (find "cell").Resolve.d_mutable_state;
        check_bool "kernel takes a stream" true (find "kernel").Resolve.d_rng_param;
        check_bool "a local ref is not module state" true
          (not (find "local").Resolve.d_mutable_state));
    case "is_pool_path recognizes fan-out entry points" (fun () ->
        check_bool "qualified" true
          (Program.is_pool_path [ "Gb_par"; "Pool"; "map" ]);
        check_bool "short" true (Program.is_pool_path [ "Pool"; "map_list" ]);
        check_bool "not an entry" true
          (not (Program.is_pool_path [ "Pool"; "no_such" ]));
        check_bool "not the pool" true
          (not (Program.is_pool_path [ "Stack"; "map" ])));
  ]

(* --- Interprocedural rules on constructed programs -------------------------- *)

(* A three-module library where a Pool.map thunk reaches mutable module
   state two calls away — the same shape CI's fault-injection fixture
   uses. [variant] swaps the fan-out line. *)
let fixture ~par =
  let run_body =
    if par then "let run xs = Gb_par.Pool.map (fun _ -> Fix_mid.note ()) xs\n"
    else "let run xs = List.map (fun _ -> Fix_mid.note ()) xs\n"
  in
  [
    ("fix/dune", "(library\n (name fix))\n");
    ("fix/fix_state.ml", "let cell = ref 0\nlet touch () = incr cell\n");
    ("fix/fix_mid.ml", "let note () = Fix_state.touch ()\n");
    ("fix/fix_par.ml", run_body);
  ]

let graph_findings sources = Graph_rules.check (Program.create sources)

let program_rule_tests =
  [
    case "par-unsafe-state: mutable state reached through two modules" (fun () ->
        match
          List.filter
            (fun f -> f.Rules.rule = "par-unsafe-state")
            (graph_findings (fixture ~par:true))
        with
        | [ f ] ->
            check_bool "at the defining file" true
              (Helpers.contains f.Rules.file "fix_state.ml");
            check_bool "chain has >= 2 hops" true (List.length f.Rules.why >= 2);
            check_bool "chain starts at the fan-out" true
              (match f.Rules.why with
              | root :: _ -> Helpers.contains root "Fix_par"
              | [] -> false)
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
    case "par-unsafe-state: silent without a parallel region" (fun () ->
        check_bool "no finding" true
          (List.for_all
             (fun f -> f.Rules.rule <> "par-unsafe-state")
             (graph_findings (fixture ~par:false))));
    case "par-ambient-rng: Random inside a worker, at the draw line" (fun () ->
        let sources =
          [
            ("fix/dune", "(library\n (name fix))\n");
            ( "fix/fix_par.ml",
              "let helper x =\n\
              \  Random.int x\n\
               let run xs = Gb_par.Pool.map helper xs\n" );
          ]
        in
        match
          List.filter
            (fun f -> f.Rules.rule = "par-ambient-rng")
            (graph_findings sources)
        with
        | [ f ] -> check_int "line of the draw" 2 f.Rules.line
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
    case "par-wall-clock: Sys.time inside a worker; explicit streams fine"
      (fun () ->
        let sources clock =
          [
            ("fix/dune", "(library\n (name fix))\n");
            ( "fix/fix_par.ml",
              Printf.sprintf "let work _ = %s\nlet run xs = Gb_par.Pool.map work xs\n"
                (if clock then "Sys.time ()" else "Gb_obs.Clock.now ()") );
          ]
        in
        check_rules "clock read flagged" [ "par-wall-clock" ]
          (List.filter
             (fun f -> f.Rules.rule = "par-wall-clock")
             (graph_findings (sources true)));
        check_rules "routed clock fine" []
          (List.filter
             (fun f -> f.Rules.rule = "par-wall-clock")
             (graph_findings (sources false))));
    case "rng-stream-discipline: a kernel must not open a second stream"
      (fun () ->
        let sources body =
          [
            ("fix/dune", "(library\n (name fix))\n");
            ("fix/fix_kernel.ml", Printf.sprintf "let jitter rng n = %s\n" body);
          ]
        in
        check_rules "fresh seed flagged" [ "rng-stream-discipline" ]
          (graph_findings (sources "Rng.int (Rng.create ~seed:n) 3"));
        check_rules "derived substream fine" []
          (graph_findings (sources "Rng.int (Rng.substream rng n) 3")));
    case "dead-export: unreferenced interface exports, used ones spared"
      (fun () ->
        let sources =
          [
            ("fix/dune", "(library\n (name fix))\n");
            ("fix/fix_api.ml", "let used x = x + 1\nlet unused x = x - 1\n");
            ("fix/fix_api.mli", "val used : int -> int\nval unused : int -> int\n");
            ("fix/fix_caller.ml", "let go x = Fix_api.used x\n");
          ]
        in
        match graph_findings sources with
        | [ f ] ->
            Alcotest.(check string) "rule" "dead-export" f.Rules.rule;
            check_bool "names the dead export" true
              (Helpers.contains f.Rules.message "`unused`")
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
    case "every program rule name is registered" (fun () ->
        List.iter
          (fun r -> check_bool r true (Rules.program_rule_name r))
          [
            "par-unsafe-state"; "par-ambient-rng"; "par-wall-clock";
            "rng-stream-discipline"; "dead-export";
          ];
        check_bool "file-local rule is not a program rule" true
          (not (Rules.program_rule_name "no-ambient-random")));
    case "chains answer --why through the graph" (fun () ->
        let p = Program.create (fixture ~par:true) in
        match Program.find_symbol p "Fix_state.touch" with
        | None -> Alcotest.fail "touch not found"
        | Some n ->
            check_bool "reachable" true
              (Program.parallel_reachable p n.Program.n_id);
            let chain = Program.chain p n.Program.n_id in
            check_bool "chain >= 2" true (List.length chain >= 2);
            check_bool "ends at touch" true
              (match List.rev chain with
              | last :: _ -> Helpers.contains last "touch"
              | [] -> false));
  ]

(* --- Pragma accessors (the API the staleness messages are built from) ------- *)

let pragma_accessor_tests =
  [
    case "pragma accessors expose line, rules and coverage" (fun () ->
        let scanned =
          Rules.scan_source ~file:"lib/fixture/code.ml"
            "(* lint: allow no-ambient-random — fixture *)\nlet x = 1\n"
        in
        match scanned.Rules.s_pragmas with
        | [ p ] ->
            check_int "line" 1 (Rules.pragma_line p);
            Alcotest.(check (list string))
              "rules" [ "no-ambient-random" ] (Rules.pragma_rules p);
            check_bool "covers next line" true
              (Rules.pragma_covers p ~rule:"no-ambient-random" ~line:2);
            check_bool "not three lines down" true
              (not (Rules.pragma_covers p ~rule:"no-ambient-random" ~line:4));
            check_bool "not another rule" true
              (not (Rules.pragma_covers p ~rule:"no-wall-clock" ~line:2));
            (* marking it used by hand (as the program driver does for
               graph findings) keeps apply_pragmas from calling it stale *)
            Rules.pragma_mark_used p;
            check_rules "no stale report" []
              (Rules.apply_pragmas scanned ~extra:[])
        | ps -> Alcotest.failf "expected 1 pragma, got %d" (List.length ps));
    case "stale pragmas name the nearest enclosing binding" (fun () ->
        let src =
          "let outer = 1\n\n(* lint: allow no-ambient-random — nothing here *)\nlet inner = 2\n"
        in
        let lexed = Tokenizer.tokenize src in
        (match Rules.enclosing_binding lexed 3 with
        | Some ("let", "outer") -> ()
        | Some (kw, n) -> Alcotest.failf "expected `let outer`, got `%s %s`" kw n
        | None -> Alcotest.fail "no enclosing binding found");
        match findings src with
        | [ f ] ->
            check_bool "message names the rule" true
              (Helpers.contains f.Rules.message "no-ambient-random");
            check_bool "message names the binding" true
              (Helpers.contains f.Rules.message "let outer")
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
  ]

(* --- Driver and self-lint --------------------------------------------------- *)

let repo_root () =
  (* dune runs tests from _build/default/test; the checkout root is the
     nearest ancestor holding .git. *)
  let rec up d =
    if Sys.file_exists (Filename.concat d ".git") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent
  in
  up (Sys.getcwd ())

let driver_tests =
  [
    case "expand_paths errors on a missing path" (fun () ->
        match Lint.expand_paths [ "no/such/path-xyzzy" ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
    case "render_json parses and counts findings" (fun () ->
        let report =
          { Lint.files = [ "lib/a.ml" ];
            findings = findings "let x = Random.int 5" }
        in
        let j = Gbisect.Obs.Json.of_string (Lint.render_json report) in
        check_bool "schema_version" true
          (Gbisect.Obs.Json.member "schema_version" j
          = Some (Gbisect.Obs.Json.Int Lint.schema_version));
        check_bool "files_scanned" true
          (Gbisect.Obs.Json.member "files_scanned" j
          = Some (Gbisect.Obs.Json.Int 1));
        (match Gbisect.Obs.Json.member "findings" j with
        | Some (Gbisect.Obs.Json.List [ _ ]) -> ()
        | _ -> Alcotest.fail "expected one finding in JSON");
        check_int "exit 1 on findings" 1 (Lint.exit_code report));
    case "exit_code is 0 when clean" (fun () ->
        check_int "clean" 0 (Lint.exit_code { Lint.files = []; findings = [] }));
    case "lint_files takes exact files, no directory walk" (fun () ->
        match repo_root () with
        | None -> Alcotest.fail "could not locate the repo root from the test cwd"
        | Some root ->
            let f = Filename.concat root "lib/prng/rng.ml" in
            let report = Lint.lint_files [ f ] in
            Alcotest.(check (list string)) "just that file" [ f ] report.Lint.files);
    case "the repo's own sources lint clean" (fun () ->
        match repo_root () with
        | None -> Alcotest.fail "could not locate the repo root from the test cwd"
        | Some root ->
            let paths =
              List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ]
            in
            (match Lint.lint_paths paths with
            | Error msg -> Alcotest.failf "lint_paths: %s" msg
            | Ok report ->
                check_bool "several files scanned" true
                  (List.length report.Lint.files > 100);
                if report.Lint.findings <> [] then
                  Alcotest.failf "repo is not lint-clean:\n%s"
                    (Lint.render_human report)));
    case "the repo's own sources survive whole-program analysis" (fun () ->
        match repo_root () with
        | None -> Alcotest.fail "could not locate the repo root from the test cwd"
        | Some root ->
            let paths =
              List.filter Sys.file_exists
                (List.map (Filename.concat root)
                   [ "lib"; "bin"; "bench"; "test"; "examples"; "lint" ])
            in
            (match Lint.lint_program paths with
            | Error msg -> Alcotest.failf "lint_program: %s" msg
            | Ok (report, p) ->
                let modules, defs, edges, par = Program.stats p in
                check_bool "a real graph" true
                  (modules > 50 && defs > 500 && edges > 1000 && par > 50);
                if report.Lint.findings <> [] then
                  Alcotest.failf "repo is not clean under --program:\n%s"
                    (Lint.render_human report)));
  ]

let () =
  Alcotest.run "lint"
    [
      ("tokenizer", tokenizer_tests);
      ("rules", rule_tests);
      ("pragmas", pragma_tests);
      ("extractor", extractor_tests);
      ("program rules", program_rule_tests);
      ("pragma accessors", pragma_accessor_tests);
      ("driver", driver_tests);
    ]
