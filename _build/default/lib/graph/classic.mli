(** Deterministic families of structured graphs.

    These are the "special graphs" of the paper's evaluation (grid,
    ladder, binary tree — Table 1 and the appendix) together with the
    usual suspects used in tests as oracles with known bisection widths:

    - a path of [2k] vertices has bisection width 1;
    - a cycle has bisection width 2;
    - an [r x c] grid cut across the short side has width [min r c];
    - a ladder (2 x k grid) has width 2 (cut between two rungs);
    - a complete graph K_{2n} has width n^2.

    All constructors return unit-weighted graphs and raise
    [Invalid_argument] on non-positive size parameters. *)

val path : int -> Csr.t
(** [path n]: vertices [0..n-1], edges [i - i+1]. *)

val cycle : int -> Csr.t
(** [cycle n] for [n >= 3]. *)

val complete : int -> Csr.t
(** [complete n] = K_n. *)

val complete_bipartite : int -> int -> Csr.t
(** [complete_bipartite a b] = K_{a,b}; the left class is [0..a-1]. *)

val star : int -> Csr.t
(** [star n]: centre [0] joined to [n] leaves ([n+1] vertices). *)

val wheel : int -> Csr.t
(** [wheel n]: a cycle of [n >= 3] rim vertices plus a hub. *)

val grid : rows:int -> cols:int -> Csr.t
(** [grid ~rows ~cols]: 4-connected mesh; vertex [(r, c)] has id
    [r * cols + c]. *)

val torus : rows:int -> cols:int -> Csr.t
(** [grid] with wrap-around rows and columns ([rows, cols >= 3]). *)

val ladder : int -> Csr.t
(** [ladder k]: the 2 x k grid ([2k] vertices, [3k - 2] edges), the
    classical KL failure case (Fig. 3 of the paper). *)

val circular_ladder : int -> Csr.t
(** [circular_ladder k]: the prism graph C_k x K_2 ([k >= 3]). *)

val binary_tree : depth:int -> Csr.t
(** [binary_tree ~depth]: the complete binary tree with
    [2^(depth+1) - 1] vertices; root is vertex [0], children of [i] are
    [2i + 1] and [2i + 2]. [depth >= 0]. *)

val kary_tree : arity:int -> depth:int -> Csr.t
(** Complete [arity]-ary tree of the given depth ([arity >= 1]). *)

val hypercube : int -> Csr.t
(** [hypercube d]: the d-dimensional cube on [2^d] vertices
    ([0 <= d <= 20]); bisection width [2^(d-1)]. *)

val petersen : unit -> Csr.t
(** The Petersen graph (10 vertices, 3-regular, bisection width 5). *)

val disjoint_cycles : count:int -> len:int -> Csr.t
(** [disjoint_cycles ~count ~len]: [count] disjoint cycles of length
    [len >= 3] — the degree-2 regular graphs the paper notes arise from
    [Gbreg(2n, b, 2)] ("a collection of cordless cycles"). *)

val grid_of_side : int -> Csr.t
(** [grid_of_side n] = [grid ~rows:n ~cols:n] (the paper's "N x N grid"). *)

val grid3d : x:int -> y:int -> z:int -> Csr.t
(** 6-connected 3-D mesh; vertex [(i,j,k)] has id [(i*y + j)*z + k].
    Bisection width of a cube cut across the smallest face is that
    face's area. *)

val barbell : int -> Csr.t
(** [barbell m]: two [K_m] joined by a single edge ([2m] vertices) —
    bisection width 1, a classic easy-but-deceptive instance for local
    search ([m >= 2]). *)

val caterpillar : spine:int -> legs:int -> Csr.t
(** A path of [spine] vertices, each carrying [legs] pendant leaves
    ([spine * (legs + 1)] vertices). Trees with maximal 'bushiness' —
    bisection width 1 when [spine] is even. *)

val cycle_power : int -> int -> Csr.t
(** [cycle_power n k]: the k-th power of [C_n] — each vertex joined to
    its [k] nearest neighbours both ways ([2k]-regular, width [~2k] for
    a contiguous split; [1 <= k < n / 2]). *)

val complete_multipartite : int list -> Csr.t
(** [complete_multipartite [s1; s2; ...]]: vertices in classes of the
    given sizes, edges exactly between different classes. *)

val crown : int -> Csr.t
(** [crown n]: [K_{n,n}] minus a perfect matching ([n >= 2]);
    (n-1)-regular bipartite. *)
