(* Why the paper needed the Gbreg model (§IV).

   Claim 1: in Gnp with fixed p, the minimum cut is about half the
   edges, so a *random* bisection is already near-optimal and the model
   cannot separate good heuristics from mediocre ones.

   Claim 2: in G2set, at small average degree the planted width [bis]
   overestimates the true width — sparse halves shatter, and a smarter
   split beats the plant.

   Claim 3: Gbreg fixes both — regular, uniform, with a width that is
   (w.h.p.) exactly the planted b, so heuristic error is measurable.

   Run with:  dune exec examples/model_comparison.exe *)

let two_n = 800

let ratio cut random_cut =
  if random_cut = 0 then 1.0 else float_of_int cut /. float_of_int random_cut

let () =
  let rng = Gbisect.Rng.create ~seed:23 in

  (* --- Claim 1: Gnp, dense-ish. ------------------------------------ *)
  Format.printf "Gnp(%d, p) with p = 0.05 (avg degree ~%.0f):@." two_n
    (0.05 *. float_of_int (two_n - 1));
  let g = Gbisect.Gnp.generate rng ~n:two_n ~p:0.05 in
  let random_cut =
    Gbisect.Bisection.compute_cut g (Gbisect.Initial.random rng g)
  in
  let kl = Gbisect.solve ~algorithm:`Kl rng g in
  let kl_cut = Gbisect.Bisection.cut kl.Gbisect.bisection in
  Format.printf
    "  random bisection cut %d, KL cut %d — KL only %.0f%% below random;@."
    random_cut kl_cut
    ((1. -. ratio kl_cut random_cut) *. 100.);
  Format.printf "  the model barely distinguishes heuristics (paper §IV).@.@.";

  (* --- Claim 2: G2set at low degree. -------------------------------- *)
  let bis = 40 in
  let params =
    Gbisect.Planted.params_for_average_degree ~two_n ~avg_degree:2.0 ~bis
  in
  let g = Gbisect.Planted.generate rng params in
  let planted_cut =
    Gbisect.Bisection.compute_cut g (Gbisect.Planted.planted_sides params)
  in
  let best = Gbisect.solve ~algorithm:`Ckl ~starts:4 rng g in
  Format.printf "G2set(%d, avg degree 2.0, bis=%d):@." two_n bis;
  Format.printf "  planted split cuts %d, but CKL finds a cut of %d —@." planted_cut
    (Gbisect.Bisection.cut best.Gbisect.bisection);
  Format.printf
    "  at low degree the true width undershoots the plant (paper §IV).@.@.";

  (* --- Claim 3: Gbreg. ---------------------------------------------- *)
  let params = Gbisect.Bregular.{ two_n; b = 16; d = 4 } in
  let params =
    { params with Gbisect.Bregular.b = Gbisect.Bregular.nearest_feasible_b params }
  in
  let g = Gbisect.Bregular.generate rng params in
  let planted = params.Gbisect.Bregular.b in
  let ckl = Gbisect.solve ~algorithm:`Ckl ~starts:4 rng g in
  let exact_small =
    (* Exact check is exponential; demonstrate on a small sibling. *)
    let small = Gbisect.Bregular.{ two_n = 16; b = 2; d = 3 } in
    let graph = Gbisect.Bregular.generate rng small in
    Gbisect.Exact.bisection_width graph
  in
  Format.printf "Gbreg(%d, %d, 4):@." two_n planted;
  Format.printf "  CKL returns exactly the planted width: cut %d = b = %d;@."
    (Gbisect.Bisection.cut ckl.Gbisect.bisection)
    planted;
  Format.printf
    "  (and on a 16-vertex sibling, exact branch-and-bound confirms width %d <= b).@."
    exact_small;
  Format.printf "  heuristic error is measurable in this model — the paper's point.@."
