module Rng = Gb_prng.Rng

type contraction = {
  coarse : Hgraph.t;
  fine_to_coarse : int array;
  coarse_to_fine : int array array;
}

(* Visit cells in random order; match each free cell with the free
   neighbour it shares the smallest net with (2-pin nets first). *)
let match_cells rng h =
  let n = Hgraph.n_vertices h in
  let mate = Array.make n (-1) in
  let order = Rng.permutation rng n in
  Array.iter
    (fun v ->
      if mate.(v) < 0 then begin
        let best = ref (-1) and best_size = ref max_int in
        Hgraph.iter_vertex_nets h v (fun e ->
            let size = Hgraph.net_size h e in
            if size < !best_size then
              Hgraph.iter_net h e (fun u ->
                  if u <> v && mate.(u) < 0 && size < !best_size then begin
                    best := u;
                    best_size := size
                  end));
        if !best >= 0 then begin
          mate.(v) <- !best;
          mate.(!best) <- v
        end
      end)
    order;
  mate

let contract h mate =
  let n = Hgraph.n_vertices h in
  if Array.length mate <> n then invalid_arg "Hcoarsen.contract: mate length";
  Array.iteri
    (fun v u ->
      if u >= 0 && (u >= n || u = v || mate.(u) <> v) then
        invalid_arg "Hcoarsen.contract: mate is not an involution")
    mate;
  let fine_to_coarse = Array.make n (-1) in
  let groups = ref [] in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if fine_to_coarse.(v) < 0 then begin
      let c = !next in
      incr next;
      fine_to_coarse.(v) <- c;
      if mate.(v) >= 0 then begin
        fine_to_coarse.(mate.(v)) <- c;
        groups := [| v; mate.(v) |] :: !groups
      end
      else groups := [| v |] :: !groups
    end
  done;
  let coarse_to_fine = Array.of_list (List.rev !groups) in
  (* Map nets through; drop images with fewer than 2 distinct pins. *)
  let nets = ref [] in
  for e = Hgraph.n_nets h - 1 downto 0 do
    let image =
      Hgraph.net_members h e |> Array.to_list
      |> List.map (fun v -> fine_to_coarse.(v))
      |> List.sort_uniq Int.compare
    in
    match image with _ :: _ :: _ -> nets := image :: !nets | _ -> ()
  done;
  let coarse = Hgraph.of_nets ~n:!next !nets in
  { coarse; fine_to_coarse; coarse_to_fine }

let project c side = Array.map (fun cv -> side.(cv)) c.fine_to_coarse

let rebalance h side =
  let n = Hgraph.n_vertices h in
  if Array.length side <> n then invalid_arg "Hcoarsen.rebalance: side length";
  let side = Array.copy side in
  let pins = Array.init (Hgraph.n_nets h) (fun _ -> [| 0; 0 |]) in
  for e = 0 to Hgraph.n_nets h - 1 do
    Hgraph.iter_net h e (fun v -> pins.(e).(side.(v)) <- pins.(e).(side.(v)) + 1)
  done;
  let c = [| 0; 0 |] in
  Array.iter (fun s -> c.(s) <- c.(s) + 1) side;
  let gain v =
    let s = side.(v) in
    let g = ref 0 in
    Hgraph.iter_vertex_nets h v (fun e ->
        let same = pins.(e).(s) and other = pins.(e).(1 - s) in
        if same = 1 && other > 0 then incr g
        else if other = 0 && same > 1 then decr g);
    !g
  in
  while abs (c.(0) - c.(1)) >= 2 do
    let from_side = if c.(0) > c.(1) then 0 else 1 in
    let best = ref (-1) and best_gain = ref min_int in
    for v = 0 to n - 1 do
      if side.(v) = from_side then begin
        let g = gain v in
        if g > !best_gain then begin
          best := v;
          best_gain := g
        end
      end
    done;
    let v = !best in
    Hgraph.iter_vertex_nets h v (fun e ->
        pins.(e).(from_side) <- pins.(e).(from_side) - 1;
        pins.(e).(1 - from_side) <- pins.(e).(1 - from_side) + 1);
    side.(v) <- 1 - from_side;
    c.(from_side) <- c.(from_side) - 1;
    c.(1 - from_side) <- c.(1 - from_side) + 1
  done;
  side

let random_sides rng n =
  let perm = Rng.permutation rng n in
  let side = Array.make n 1 in
  for i = 0 to (n / 2) - 1 do
    side.(perm.(i)) <- 0
  done;
  side

type stats = {
  fine_cells : int;
  coarse_cells : int;
  coarse_cut : int;
  final_cut : int;
  levels : int;
}

let bisect ?config rng h =
  let mate = match_cells rng h in
  let c = contract h mate in
  let coarse_start = random_sides rng (Hgraph.n_vertices c.coarse) in
  let coarse_side, _ = Hfm.refine ?config c.coarse coarse_start in
  let coarse_cut = Hgraph.cut_size c.coarse coarse_side in
  let start = rebalance h (project c coarse_side) in
  let side, _ = Hfm.refine ?config h start in
  ( side,
    {
      fine_cells = Hgraph.n_vertices h;
      coarse_cells = Hgraph.n_vertices c.coarse;
      coarse_cut;
      final_cut = Hgraph.cut_size h side;
      levels = 1;
    } )

let recursive ?config ?(min_cells = 64) ?(max_levels = 20) rng h =
  if min_cells < 2 then invalid_arg "Hcoarsen.recursive: min_cells < 2";
  let rec coarsen chain h levels =
    if Hgraph.n_vertices h <= min_cells || levels >= max_levels then (chain, h)
    else begin
      let c = contract h (match_cells rng h) in
      if 10 * Hgraph.n_vertices c.coarse > 9 * Hgraph.n_vertices h then (chain, h)
      else coarsen ((h, c) :: chain) c.coarse (levels + 1)
    end
  in
  let chain, coarsest = coarsen [] h 0 in
  let side, _ = Hfm.refine ?config coarsest (random_sides rng (Hgraph.n_vertices coarsest)) in
  let coarse_cut = Hgraph.cut_size coarsest side in
  let coarse_cells = Hgraph.n_vertices coarsest in
  let side =
    List.fold_left
      (fun side (fine, contraction) ->
        let start = rebalance fine (project contraction side) in
        fst (Hfm.refine ?config fine start))
      side chain
  in
  ( side,
    {
      fine_cells = Hgraph.n_vertices h;
      coarse_cells;
      coarse_cut;
      final_cut = Hgraph.cut_size h side;
      levels = List.length chain + 1;
    } )
