lib/experiments/runner.mli: Gb_graph Gb_prng Profile
