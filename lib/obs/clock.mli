(** The pluggable clock behind every timestamp the library reports.

    Trace spans ({!Trace}), per-run [seconds] in telemetry records, and
    the experiment tables' time columns all read this one clock. The
    default is [Sys.time] (CPU seconds) so the library itself needs no
    [unix] dependency; executables that link [unix] install
    [Unix.gettimeofday] at startup for wall-clock numbers, and the
    determinism test suite installs a constant clock so that two runs
    of the same experiment render byte-identical tables (timing cells
    are the only non-deterministic content of a table — see
    PARALLELISM.md).

    Configure once at startup, before any domains are spawned: the
    source is read racily (a single immutable closure pointer), which
    is safe exactly because it is not mutated mid-run. *)

val set : (unit -> float) -> unit
(** Install a clock returning seconds (monotonic or epoch — only
    differences are reported). *)

val now : unit -> float
(** Read the current clock. *)
