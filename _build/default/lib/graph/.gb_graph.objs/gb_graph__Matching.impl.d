lib/graph/matching.ml: Array Csr Gb_prng List
