(** Extra baseline: spectral bisection (E-X3, ours).

    Boppana (1987) showed spectral methods recover planted bisections
    of exactly the paper's §IV models; this table puts the Fiedler
    split (raw, and with one KL refinement) next to KL and CKL on the
    [Gbreg] corpus, quantifying how much of compaction's advantage the
    eigenvector already buys. *)

val spectral_table : Profile.t -> string
