lib/partition/metrics.mli: Format Gb_graph
