module Rng = Gb_prng.Rng
module Gain_buckets = Gb_kl.Gain_buckets

type config = { max_passes : int; until_no_improvement : bool; tolerance : int }

let default_config = { max_passes = 50; until_no_improvement = true; tolerance = 2 }

type stats = {
  passes : int;
  moves : int;
  initial_cut : int;
  final_cut : int;
  pass_gains : int list;
}

let check_input h side =
  if Array.length side <> Hgraph.n_vertices h then invalid_arg "Hfm: side length mismatch";
  if Array.exists (fun s -> s <> 0 && s <> 1) side then invalid_arg "Hfm: sides must be 0 or 1";
  let ones = Array.fold_left ( + ) 0 side in
  let zeros = Array.length side - ones in
  if abs (zeros - ones) > 1 then invalid_arg "Hfm: input bisection is not balanced"

(* Initial gain of v: +1 for every net where v is the last pin on its
   side and the other side is inhabited; -1 for every net entirely on
   v's side with other pins. *)
let initial_gains h side pins =
  let n = Hgraph.n_vertices h in
  let gains = Array.make n 0 in
  for v = 0 to n - 1 do
    let s = side.(v) in
    Hgraph.iter_vertex_nets h v (fun e ->
        let same = pins.(e).(s) and other = pins.(e).(1 - s) in
        if same = 1 && other > 0 then gains.(v) <- gains.(v) + 1
        else if other = 0 && same > 1 then gains.(v) <- gains.(v) - 1)
  done;
  gains

let one_pass_internal ~tolerance h side0 =
  if tolerance < 2 then invalid_arg "Hfm: tolerance must be >= 2";
  let n = Hgraph.n_vertices h in
  let n_nets = Hgraph.n_nets h in
  let side = Array.copy side0 in
  let pins = Array.init n_nets (fun _ -> [| 0; 0 |]) in
  for e = 0 to n_nets - 1 do
    Hgraph.iter_net h e (fun v -> pins.(e).(side.(v)) <- pins.(e).(side.(v)) + 1)
  done;
  let gains = initial_gains h side pins in
  let locked = Array.make n false in
  let range =
    let r = ref 1 in
    for v = 0 to n - 1 do
      let d = Hgraph.vertex_degree h v in
      if d > !r then r := d
    done;
    !r
  in
  let buckets =
    [| Gain_buckets.create ~capacity:n ~range; Gain_buckets.create ~capacity:n ~range |]
  in
  for v = 0 to n - 1 do
    Gain_buckets.insert buckets.(side.(v)) v gains.(v)
  done;
  let c = [| 0; 0 |] in
  Array.iter (fun s -> c.(s) <- c.(s) + 1) side;
  let commit_tol = n land 1 in
  let moves = Array.make (max n 1) 0 in
  let cumulative = Array.make (max n 1) 0 in
  let balanced_at = Array.make (max n 1) false in
  let running = ref 0 in
  let performed = ref 0 in
  let bump u delta =
    gains.(u) <- gains.(u) + delta;
    Gain_buckets.update buckets.(side.(u)) u gains.(u)
  in
  (* FM net-state update rules around moving v from side f to side t. *)
  let move v =
    let f = side.(v) in
    let t = 1 - f in
    locked.(v) <- true;
    Hgraph.iter_vertex_nets h v (fun e ->
        let p = pins.(e) in
        (* before the move *)
        if p.(t) = 0 then Hgraph.iter_net h e (fun u -> if not locked.(u) then bump u 1)
        else if p.(t) = 1 then
          Hgraph.iter_net h e (fun u ->
              if (not locked.(u)) && side.(u) = t then bump u (-1));
        p.(f) <- p.(f) - 1;
        p.(t) <- p.(t) + 1;
        (* after the move (v now counted on t, but v is locked) *)
        if p.(f) = 0 then Hgraph.iter_net h e (fun u -> if not locked.(u) then bump u (-1))
        else if p.(f) = 1 then
          Hgraph.iter_net h e (fun u ->
              if (not locked.(u)) && side.(u) = f then bump u 1));
    side.(v) <- t;
    c.(f) <- c.(f) - 1;
    c.(t) <- c.(t) + 1
  in
  (try
     for i = 0 to n - 1 do
       let legal s = c.(s) > 0 && abs (c.(s) - 1 - (c.(1 - s) + 1)) <= tolerance in
       let candidate s = if legal s then Gain_buckets.max_gain buckets.(s) else None in
       let from_side =
         match (candidate 0, candidate 1) with
         | None, None -> raise Exit
         | Some _, None -> 0
         | None, Some _ -> 1
         | Some g0, Some g1 ->
             if g0 > g1 then 0
             else if g1 > g0 then 1
             else if c.(0) >= c.(1) then 0
             else 1
       in
       let v, gv =
         match Gain_buckets.pop_max buckets.(from_side) with
         | Some p -> p
         | None -> raise Exit
       in
       move v;
       running := !running + gv;
       moves.(i) <- v;
       cumulative.(i) <- !running;
       balanced_at.(i) <- abs (c.(0) - c.(1)) <= commit_tol;
       incr performed
     done
   with Exit -> ());
  let best_k = ref 0 and best_gain = ref 0 in
  for i = 0 to !performed - 1 do
    if balanced_at.(i) && cumulative.(i) > !best_gain then begin
      best_gain := cumulative.(i);
      best_k := i + 1
    end
  done;
  if !best_gain <= 0 then (Array.copy side0, 0)
  else begin
    let result = Array.copy side0 in
    for i = 0 to !best_k - 1 do
      result.(moves.(i)) <- 1 - result.(moves.(i))
    done;
    (result, !best_gain)
  end

let one_pass ?(tolerance = default_config.tolerance) h side =
  check_input h side;
  one_pass_internal ~tolerance h side

let refine ?(config = default_config) h side0 =
  check_input h side0;
  let initial_cut = Hgraph.cut_size h side0 in
  let side = ref (Array.copy side0) in
  let pass_gains = ref [] in
  let moves = ref 0 in
  let passes = ref 0 in
  (try
     while !passes < config.max_passes do
       let next, gain = one_pass_internal ~tolerance:config.tolerance h !side in
       incr passes;
       pass_gains := gain :: !pass_gains;
       if gain > 0 then begin
         Array.iteri (fun v s -> if s <> next.(v) then incr moves) !side;
         side := next
       end
       else if config.until_no_improvement then raise Exit
     done
   with Exit -> ());
  let final_cut = Hgraph.cut_size h !side in
  ( !side,
    {
      passes = !passes;
      moves = !moves;
      initial_cut;
      final_cut;
      pass_gains = List.rev !pass_gains;
    } )

let random_sides rng n =
  let perm = Rng.permutation rng n in
  let side = Array.make n 1 in
  for i = 0 to (n / 2) - 1 do
    side.(perm.(i)) <- 0
  done;
  side

let run ?config rng h =
  let side0 = random_sides rng (Hgraph.n_vertices h) in
  refine ?config h side0
