(* The whole-program view: per-module symbol tables from
   {!Resolve.extract}, a cross-module call graph, and the parallel
   reachability pass the interprocedural rules in {!Graph_rules} are
   judged against. Everything is deterministic: modules are processed
   in sorted key order and the BFS is FIFO, so parent chains (and
   therefore [--why] output and DOT artifacts) are host-independent. *)

type module_info = {
  m_key : string;  (* normalized path sans extension: "lib/kl/fm" *)
  m_display : string;  (* how other code spells it: "Gb_kl.Fm" *)
  m_impl : string option;  (* .ml path *)
  m_intf : string option;  (* .mli path *)
  m_extracted : Resolve.extracted;
  m_exports : (string * int) list;
}

type node = {
  n_id : int;
  n_module : string;
  n_file : string;
  n_display : string;  (* "Gb_kl.Fm.run" *)
  n_def : Resolve.def;
  mutable n_callees : int list;  (* resolved internal edges, de-duped *)
  mutable n_ext : Resolve.reference list;  (* unresolved references *)
}

type t = {
  modules : (string, module_info) Hashtbl.t;
  module_keys : string list;  (* sorted *)
  displays : (string, string) Hashtbl.t;  (* display -> module key *)
  nodes : node array;
  index : (string, int) Hashtbl.t;  (* "key::def" -> node id *)
  par_parent : int option array;
      (* BFS tree: [Some p] marks parallel-reachable, roots point to
         themselves *)
  used_exports : (string, unit) Hashtbl.t;  (* "key::name" referenced
                                                from another module *)
}

(* --- building the module table ------------------------------------- *)

let normalize = Rules.normalize_path

let strip_ext path =
  match Filename.chop_suffix_opt path ~suffix:".ml" with
  | Some base -> Some (base, `Impl)
  | None -> (
      match Filename.chop_suffix_opt path ~suffix:".mli" with
      | Some base -> Some (base, `Intf)
      | None -> None)

(* First [(name <ident>)] in a dune file — the library (or executable)
   name for the directory. Token-free scan: dune files are tiny. *)
let dune_name content =
  let n = String.length content in
  let key = "(name" in
  let rec find i =
    if i + 5 >= n then None
    else if
      String.sub content i 5 = key
      && (content.[i + 5] = ' ' || content.[i + 5] = '\n')
      (* exact "(name" — "(names ...)" of an executables stanza must
         not match *)
    then begin
      let j = ref (i + 5) in
      while !j < n && (content.[!j] = ' ' || content.[!j] = '\n') do incr j done;
      let s = !j in
      while
        !j < n
        &&
        match content.[!j] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
        | _ -> false
      do
        incr j
      done;
      if !j > s then Some (String.sub content s (!j - s)) else None
    end
    else find (i + 1)
  in
  find 0

let display_of ~lib_names dir base =
  let modname = String.capitalize_ascii base in
  match List.assoc_opt dir lib_names with
  | Some lib ->
      let lib = String.capitalize_ascii lib in
      if String.equal lib modname then lib else lib ^ "." ^ modname
  | None -> modname

let build sources =
  let sources = List.map (fun (p, c) -> (normalize p, c)) sources in
  let lib_names =
    List.filter_map
      (fun (p, c) ->
        if Filename.basename p = "dune" then
          Option.map (fun nm -> (Filename.dirname p, nm)) (dune_name c)
        else None)
      sources
  in
  let modules = Hashtbl.create 64 in
  let impls = Hashtbl.create 64 and intfs = Hashtbl.create 64 in
  List.iter
    (fun (p, c) ->
      match strip_ext p with
      | Some (base, `Impl) -> Hashtbl.replace impls base (p, c)
      | Some (base, `Intf) -> Hashtbl.replace intfs base (p, c)
      | None -> ())
    sources;
  let keys =
    List.sort_uniq String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) impls []
      @ Hashtbl.fold (fun k _ acc -> k :: acc) intfs [])
  in
  let displays = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let dir = Filename.dirname key and base = Filename.basename key in
      let extracted, exports =
        ( (match Hashtbl.find_opt impls key with
          | Some (_, c) -> Resolve.extract (Tokenizer.tokenize c)
          | None ->
              {
                Resolve.x_defs = [];
                x_aliases = [];
                x_opens = [];
                x_includes = [];
                x_submodules = [];
              }),
          match Hashtbl.find_opt intfs key with
          | Some (_, c) -> Resolve.exports (Tokenizer.tokenize c)
          | None -> [] )
      in
      let display = display_of ~lib_names dir base in
      let info =
        {
          m_key = key;
          m_display = display;
          m_impl = Option.map fst (Hashtbl.find_opt impls key);
          m_intf = Option.map fst (Hashtbl.find_opt intfs key);
          m_extracted = extracted;
          m_exports = exports;
        }
      in
      Hashtbl.replace modules key info;
      if not (Hashtbl.mem displays display) then
        Hashtbl.add displays display key)
    keys;
  (modules, keys, displays)

(* --- reference resolution ------------------------------------------ *)

type target = Def of string * string | Module of string | Ext

let is_upper s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let rec uident_prefix = function
  | x :: tl when is_upper x ->
      let pre, rest = uident_prefix tl in
      (x :: pre, rest)
  | l -> ([], l)

let dotted = String.concat "."

(* Longest prefix of the leading Uident run that names a known module:
   ["Gb_kl"; "Fm"; "run"] matches display "Gb_kl.Fm", leaving
   ["run"]. *)
let display_match displays path =
  let pre, rest = uident_prefix path in
  let rec go pre rest =
    match pre with
    | [] -> None
    | _ -> (
        match Hashtbl.find_opt displays (dotted pre) with
        | Some key -> Some (key, rest)
        | None ->
            let rpre = List.rev pre in
            go (List.rev (List.tl rpre)) (List.hd rpre :: rest))
  in
  go pre rest

let max_depth = 10

type ctx = {
  c_modules : (string, module_info) Hashtbl.t;
  c_displays : (string, string) Hashtbl.t;
  c_defsets : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* module key -> def-name set, so lookups are O(1) *)
  c_cache : (string, target) Hashtbl.t;
      (* "<from>|<dotted path>" -> target; resolution is pure, and
         without memoization every unresolved bare identifier would
         re-explore the open-prefix tree exponentially *)
}

let def_exists ctx key name =
  match Hashtbl.find_opt ctx.c_defsets key with
  | Some set -> Hashtbl.mem set name
  | None -> false

let sibling ctx m head =
  let key = Filename.dirname m.m_key ^ "/" ^ String.uncapitalize_ascii head in
  if key <> m.m_key && Hashtbl.mem ctx.c_modules key then Some key else None

(* [opens]: whether the open list may still be consulted. Opens apply
   only to the reference as written — once a path has been prefixed by
   an open (or an include), further open expansion is off. Without
   that restriction every unresolvable bare identifier explores
   |opens|^depth distinct prefixed paths; memoization alone cannot
   save it because each path is distinct. *)
let rec resolve ?(opens = true) ctx ~from_key path depth : target =
  if depth > max_depth then Ext
  else
    let cache_key =
      (if opens then "o|" else "-|") ^ from_key ^ "|" ^ dotted path
    in
    match Hashtbl.find_opt ctx.c_cache cache_key with
    | Some t -> t
    | None ->
        (* seed the entry with Ext so cyclic open/alias chains bottom
           out instead of recursing *)
        Hashtbl.add ctx.c_cache cache_key Ext;
        let result = resolve_uncached ~opens ctx ~from_key path depth in
        Hashtbl.replace ctx.c_cache cache_key result;
        result

and resolve_uncached ~opens ctx ~from_key path depth : target =
  match Hashtbl.find_opt ctx.c_modules from_key with
  | None -> Ext
  | Some m -> (
      match path with
      | [] -> Ext
      | [ x ] when not (is_upper x) ->
          if def_exists ctx from_key x then Def (from_key, x)
          else if opens then via_opens ctx m path depth
          else Ext
      | head :: rest when is_upper head -> (
          match List.assoc_opt head m.m_extracted.Resolve.x_aliases with
          | Some tgt -> resolve ~opens ctx ~from_key (tgt @ rest) (depth + 1)
          | None -> (
              match display_match ctx.c_displays path with
              | Some (key, rest') when key <> from_key ->
                  resolve_in ctx key rest' depth
              | _ -> (
                  match sibling ctx m head with
                  | Some key -> resolve_in ctx key rest depth
                  | None ->
                      if List.mem head m.m_extracted.Resolve.x_submodules then
                        let nm = dotted path in
                        if def_exists ctx from_key nm then Def (from_key, nm)
                        else if opens then via_opens ctx m path depth
                        else Ext
                      else if opens then via_opens ctx m path depth
                      else Ext)))
      | _ -> Ext)

and resolve_in ctx key rest depth =
  match rest with
  | [] -> Module key
  | _ -> (
      match Hashtbl.find_opt ctx.c_modules key with
      | None -> Ext
      | Some m -> (
          match rest with
          | [ x ] when not (is_upper x) ->
              if def_exists ctx key x then Def (key, x)
              else via_includes ctx m x depth
          | head :: rest' when is_upper head -> (
              match List.assoc_opt head m.m_extracted.Resolve.x_aliases with
              | Some tgt ->
                  resolve ~opens:false ctx ~from_key:key (tgt @ rest')
                    (depth + 1)
              | None ->
                  if List.mem head m.m_extracted.Resolve.x_submodules then
                    let nm = dotted rest in
                    if def_exists ctx key nm then Def (key, nm) else Ext
                  else Ext)
          | _ -> Ext))

and via_opens ctx m path depth =
  let rec go = function
    | [] -> Ext
    | o :: tl -> (
        match
          resolve ~opens:false ctx ~from_key:m.m_key (o @ path) (depth + 1)
        with
        | Ext -> go tl
        | r -> r)
  in
  go m.m_extracted.Resolve.x_opens

and via_includes ctx m x depth =
  let rec go = function
    | [] -> Ext
    | inc :: tl -> (
        match
          resolve ~opens:false ctx ~from_key:m.m_key (inc @ [ x ]) (depth + 1)
        with
        | Ext -> go tl
        | r -> r)
  in
  go m.m_extracted.Resolve.x_includes

(* --- the graph ----------------------------------------------------- *)

let pool_entries = [ "init"; "map"; "map_list"; "best_by" ]

let is_pool_path path =
  match List.rev path with
  | op :: "Pool" :: _ -> List.mem op pool_entries
  | _ -> false

let is_par_root node =
  List.exists is_pool_path (List.map (fun r -> r.Resolve.r_path) node.n_def.Resolve.d_refs)
  || List.exists
       (fun r -> r.Resolve.r_path = [ "Domain"; "spawn" ])
       node.n_def.Resolve.d_refs

let create sources =
  let modules, module_keys, displays = build sources in
  let defsets = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let m = Hashtbl.find modules key in
      let set = Hashtbl.create 16 in
      List.iter
        (fun d -> Hashtbl.replace set d.Resolve.d_name ())
        m.m_extracted.Resolve.x_defs;
      Hashtbl.replace defsets key set)
    module_keys;
  let ctx =
    {
      c_modules = modules;
      c_displays = displays;
      c_defsets = defsets;
      c_cache = Hashtbl.create 4096;
    }
  in
  (* nodes, in sorted module order then definition order *)
  let nodes = ref [] and count = ref 0 in
  let index = Hashtbl.create 256 in
  List.iter
    (fun key ->
      let m = Hashtbl.find modules key in
      let file = Option.value m.m_impl ~default:(key ^ ".ml") in
      List.iter
        (fun d ->
          let id = !count in
          incr count;
          let node =
            {
              n_id = id;
              n_module = key;
              n_file = file;
              n_display = m.m_display ^ "." ^ d.Resolve.d_name;
              n_def = d;
              n_callees = [];
              n_ext = [];
            }
          in
          nodes := node :: !nodes;
          (* first binding of a name wins lookups — shadowing keeps
             the earlier, conservative edge *)
          let k = key ^ "::" ^ d.Resolve.d_name in
          if not (Hashtbl.mem index k) then Hashtbl.add index k id)
        m.m_extracted.Resolve.x_defs)
    module_keys;
  let nodes = Array.of_list (List.rev !nodes) in
  let used_exports = Hashtbl.create 256 in
  (* resolve every reference: edges for internal targets, raw paths
     kept for the external-pattern rules *)
  Array.iter
    (fun node ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun r ->
          match resolve ctx ~from_key:node.n_module r.Resolve.r_path 0 with
          | Def (key, name) ->
              (match Hashtbl.find_opt index (key ^ "::" ^ name) with
              | Some id when not (Hashtbl.mem seen id) ->
                  Hashtbl.add seen id ();
                  node.n_callees <- id :: node.n_callees
              | _ -> ());
              if key <> node.n_module then
                Hashtbl.replace used_exports (key ^ "::" ^ name) ()
          | Module key ->
              if key <> node.n_module then
                Hashtbl.replace used_exports (key ^ "::<module>") ()
          | Ext ->
              if List.length r.Resolve.r_path > 1 then
                node.n_ext <- r :: node.n_ext)
        node.n_def.Resolve.d_refs;
      node.n_callees <- List.rev node.n_callees;
      node.n_ext <- List.rev node.n_ext)
    nodes;
  (* includes re-export: everything the included module exports is
     used by the including module *)
  List.iter
    (fun key ->
      let m = Hashtbl.find modules key in
      List.iter
        (fun inc ->
          match resolve ctx ~from_key:key inc 0 with
          | Module ikey | Def (ikey, _) ->
              let im = Hashtbl.find modules ikey in
              List.iter
                (fun (nm, _) ->
                  Hashtbl.replace used_exports (ikey ^ "::" ^ nm) ())
                im.m_exports
          | Ext -> ())
        m.m_extracted.Resolve.x_includes)
    module_keys;
  (* parallel reachability: FIFO BFS from every Pool/Domain fan-out
     site; a root's whole body is conservatively inside the region *)
  let par_parent = Array.make (Array.length nodes) None in
  let q = Queue.create () in
  Array.iter
    (fun node ->
      if is_par_root node then begin
        par_parent.(node.n_id) <- Some node.n_id;
        Queue.add node.n_id q
      end)
    nodes;
  while not (Queue.is_empty q) do
    let id = Queue.take q in
    List.iter
      (fun callee ->
        if par_parent.(callee) = None then begin
          par_parent.(callee) <- Some id;
          Queue.add callee q
        end)
      nodes.(id).n_callees
  done;
  { modules; module_keys; displays; nodes; index; par_parent; used_exports }

(* --- queries ------------------------------------------------------- *)

let nodes t = t.nodes

let module_infos t =
  List.map (fun k -> Hashtbl.find t.modules k) t.module_keys

let parallel_reachable t id = t.par_parent.(id) <> None

let chain t id =
  match t.par_parent.(id) with
  | None -> []
  | Some _ ->
      let rec up id acc =
        match t.par_parent.(id) with
        | Some p when p <> id -> up p (t.nodes.(id).n_display :: acc)
        | _ -> t.nodes.(id).n_display :: acc
      in
      up id []

let export_used t ~module_key ~name =
  Hashtbl.mem t.used_exports (module_key ^ "::" ^ name)
  || Hashtbl.mem t.used_exports (module_key ^ "::<module>")

let find_symbol t symbol =
  let matches n =
    String.equal n.n_display symbol
    || (String.length n.n_display > String.length symbol
       && String.ends_with ~suffix:("." ^ symbol) n.n_display)
  in
  let all = Array.to_list t.nodes in
  match List.find_opt (fun n -> matches n && parallel_reachable t n.n_id) all with
  | Some n -> Some n
  | None -> List.find_opt matches all

let stats t =
  let par =
    Array.fold_left
      (fun acc n -> if parallel_reachable t n.n_id then acc + 1 else acc)
      0 t.nodes
  in
  let edges =
    Array.fold_left (fun acc n -> acc + List.length n.n_callees) 0 t.nodes
  in
  (List.length t.module_keys, Array.length t.nodes, edges, par)

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph gbisect_calls {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  Array.iter
    (fun n ->
      let attrs =
        if t.par_parent.(n.n_id) = Some n.n_id then
          ", style=filled, fillcolor=orange"  (* fan-out site *)
        else if parallel_reachable t n.n_id then
          ", style=filled, fillcolor=mistyrose"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" n.n_id n.n_display attrs))
    t.nodes;
  Array.iter
    (fun n ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.n_id c))
        n.n_callees)
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
