(** The fuzzing driver behind [gbisect fuzz].

    A run draws [runs] case seeds from a base seed (one
    {!Gb_prng.Rng.substream_seed} per case index), generates each case,
    applies every oracle, and shrinks any failure to a local minimum.
    Cases are independent and every random stream is derived from the
    case seed alone, so the run fans out on the ambient
    {!Gb_par.Pool} ([--jobs]) with bit-identical results at any job
    count, and [replay ~seed] reproduces a reported finding
    byte-for-byte on its own.

    Counters (under [Gb_obs.Metrics], when enabled): [fuzz.cases],
    [fuzz.checks] (oracle applications inside their domain),
    [fuzz.findings], [fuzz.shrink_steps]. *)

type finding = {
  case : Generators.case;  (** The original failing case. *)
  oracle : string;
  message : string;  (** Failure on the original graph. *)
  shrunk : Gb_graph.Csr.t;  (** Locally minimal failing graph. *)
  shrunk_message : string;  (** Failure on the shrunk graph. *)
  shrink_steps : int;
}

type report = {
  base_seed : int;
  runs : int;
  checks : int;  (** Oracle applications whose domain gate passed. *)
  findings : finding list;  (** In case order, then oracle order. *)
}

val run : ?broken:bool -> runs:int -> seed:int -> unit -> report
(** Fuzz [runs] cases from [seed]. [~broken:true] appends the
    {!Oracles.broken} fixture to the suite (CI fault injection: the
    report must then contain findings). *)

val replay : ?broken:bool -> seed:int -> unit -> report
(** Re-run the single case with replay seed [seed] through the same
    oracle suite. For any finding reported by {!run}, replaying its
    [case.seed] yields an identical finding. *)

val render : report -> string
(** Human-readable multi-line report, including a
    [gbisect fuzz --replay <seed>] repro line per finding. *)

val to_json : report -> Gb_obs.Json.t
(** Machine-readable report (the [--json] output). *)
