lib/graph/product.mli: Csr
