lib/partition/tree_exact.mli: Bisection Gb_graph
