(** Random-variate toolkit layered over the lagged-Fibonacci core ({!Lfg}).

    Every randomised component of the library (graph models, initial
    bisections, annealing moves, matchings) takes an explicit [Rng.t];
    there is no hidden global state, so experiments replay exactly from
    their seeds. *)

type t
(** A random stream. Mutable: drawing advances the state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh stream. Equal seeds give equal streams. *)

(* lint: allow dead-export — inverse of the Lfg constructor path; kept
   so callers with a hand-built core can enter the Rng API *)
val of_lfg : Lfg.t -> t
(** Wrap an existing core generator (shares and advances its state). *)

(* lint: allow dead-export — snapshot/restore surface of the generator
   API, the replay counterpart of split *)
val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** Child stream, statistically independent of the parent's future. *)

(** {1 Deterministic fan-out (seed splitting)}

    A parallel best-of-k or replicate loop must give task [i] the same
    stream whether it runs first, last, or on another domain. The
    scheme: the orchestrator calls {!derive_seed} once (advancing its
    own stream by exactly two draws, independent of [k] and of the job
    count), then hands task [i] the stream [substream ~base i]. See
    PARALLELISM.md. *)

val derive_seed : t -> int
(** Draw a 60-bit base seed for a family of {!substream}s; advances
    this stream by exactly two outputs. *)

val substream_seed : base:int -> int -> int
(** [substream_seed ~base i] is the seed of the [i]-th child stream of
    [base] (a SplitMix scramble — see {!Lfg.mix_seed}). *)

val substream : base:int -> int -> t
(** [substream ~base i = create ~seed:(substream_seed ~base i)]. *)

val seed_of_string : string -> int
(** Stable (FNV-1a) hash of a string, for naming experiment streams. *)

(** {1 Basic variates} *)

val int : t -> int -> int
(** [int t n] is uniform on [\[0, n)]. Unbiased (rejection sampling).
    @raise Invalid_argument if [n <= 0] or [n > Lfg.modulus]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform on [\[0, x)] with 60 bits of entropy. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val geometric_skip : t -> float -> int
(** [geometric_skip t p] draws the number of failures before the first
    success of a Bernoulli([p]) sequence, i.e. a sample of the geometric
    distribution on {0, 1, 2, ...}. Used to generate G(n,p) graphs in
    O(edges) rather than O(n^2) trials.
    @raise Invalid_argument unless [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda).
    @raise Invalid_argument if [lambda <= 0]. *)

(** {1 Collections} *)

val shuffle_in_place : t -> 'a array -> unit
(** Uniform (Fisher-Yates) shuffle. *)

val shuffle : t -> 'a array -> 'a array
(** Copying variant of {!shuffle_in_place}. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on the empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list (O(length)). *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] is a uniform k-subset of
    [0 .. n-1], in random order. O(n) time, O(n) space for k close to n;
    uses Floyd's algorithm (O(k) expected) when [k] is small.
    @raise Invalid_argument if [k < 0], [n < 0] or [k > n]. *)
