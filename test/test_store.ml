(* Tests for Gb_store: key addressing, crash-safety of the on-disk
   format (torn records dropped, tmp leftovers cleaned), the --no-cache
   switch, and the contract that justifies the whole module — an
   interrupted experiment run resumed against the same store reproduces
   the uninterrupted table and telemetry stream byte for byte. *)

module Store = Gbisect.Store
module Obs = Gbisect.Obs
module Json = Obs.Json
module Telemetry = Obs.Telemetry
module Registry = Gbisect.Registry
module Profile = Gbisect.Profile
module Pool = Gbisect.Pool

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* --- scratch directories --------------------------------------------------- *)

let seq = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  incr seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gbisect-store-%d-%d" (Unix.getpid ()) !seq)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let objects dir =
  Sys.readdir (Filename.concat dir "objects")
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare

(* --- keys ------------------------------------------------------------------ *)

let key_tests =
  [
    case "equal fields give equal keys, order matters" (fun () ->
        let k1 = Store.key [ ("a", "1"); ("b", "2") ] in
        let k2 = Store.key [ ("a", "1"); ("b", "2") ] in
        let k3 = Store.key [ ("b", "2"); ("a", "1") ] in
        Alcotest.(check string) "hash" (Store.key_hash k1) (Store.key_hash k2);
        check_bool "order-sensitive" true (Store.key_hash k1 <> Store.key_hash k3));
    case "hash is a 32-char hex filename stem" (fun () ->
        let h = Store.key_hash (Store.key [ ("x", "y") ]) in
        check_int "length" 32 (String.length h);
        String.iter
          (fun c ->
            check_bool "hex" true
              ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
          h);
    case "describe renders the fields" (fun () ->
        let d = Store.describe (Store.key [ ("seed", "42") ]) in
        check_bool "has field" true (Helpers.contains d "\"seed\"");
        check_bool "has value" true (Helpers.contains d "42"));
  ]

(* --- the store ------------------------------------------------------------- *)

let store_tests =
  [
    case "add / find round trip, stats count" (fun () ->
        with_dir (fun dir ->
            let s = Store.open_store dir in
            let k = Store.key [ ("cell", "a") ] in
            check_bool "cold miss" true (Store.find s k = None);
            Store.add s k (Json.Obj [ ("cut", Json.Int 5) ]);
            check_bool "hit" true
              (Store.find s k = Some (Json.Obj [ ("cut", Json.Int 5) ]));
            check_int "length" 1 (Store.length s);
            let st = Store.stats s in
            check_int "hits" 1 st.Store.hits;
            check_int "misses" 1 st.Store.misses;
            check_int "writes" 1 st.Store.writes;
            Store.close s;
            check_bool "exists after close" true (Store.exists dir)));
    case "records survive reopen" (fun () ->
        with_dir (fun dir ->
            let k = Store.key [ ("cell", "b") ] in
            let s = Store.open_store dir in
            Store.add s k (Json.Int 7);
            Store.close s;
            let s = Store.open_store dir in
            check_bool "found" true (Store.find s k = Some (Json.Int 7));
            check_int "one object file" 1 (List.length (objects dir))));
    case "a truncated record is dropped and the run continues" (fun () ->
        with_dir (fun dir ->
            let k = Store.key [ ("cell", "c") ] in
            let s = Store.open_store dir in
            Store.add s k (Json.Obj [ ("cut", Json.Int 9); ("t", Json.Float 0.5) ]);
            Store.close s;
            (* simulate a torn write: cut the record file mid-line *)
            let path =
              Filename.concat (Filename.concat dir "objects") (Store.key_hash k ^ ".json")
            in
            let content = read_file path in
            write_file path (String.sub content 0 (String.length content / 2));
            let s = Store.open_store dir in
            check_int "dropped counted" 1 (Store.stats s).Store.dropped;
            check_bool "record gone" true (Store.find s k = None);
            (* the recompute overwrites the torn file *)
            Store.add s k (Json.Int 1);
            check_bool "recovered" true (Store.find s k = Some (Json.Int 1));
            Store.close s;
            let s = Store.open_store dir in
            check_int "clean reopen" 0 (Store.stats s).Store.dropped;
            check_bool "durable" true (Store.find s k = Some (Json.Int 1))));
    case "leftover tmp files are removed at open" (fun () ->
        with_dir (fun dir ->
            let s = Store.open_store dir in
            Store.add s (Store.key [ ("cell", "d") ]) Json.Null;
            Store.close s;
            (* a writer killed between open_out and rename leaves this *)
            let stray =
              Filename.concat (Filename.concat dir "objects") "deadbeef.json.tmp-3-1"
            in
            write_file stray "{ half a rec";
            let s = Store.open_store dir in
            check_bool "tmp removed" true (not (Sys.file_exists stray));
            check_int "real record kept" 1 (Store.length s)));
    case "non-finite values are refused" (fun () ->
        with_dir (fun dir ->
            let s = Store.open_store dir in
            List.iter
              (fun x ->
                match
                  Store.add s (Store.key [ ("cell", "e") ]) (Json.Float x)
                with
                | exception Invalid_argument _ -> ()
                | () -> Alcotest.failf "stored %f" x)
              [ Float.nan; Float.infinity; Float.neg_infinity ];
            check_int "nothing written" 0 (Store.length s)));
    case "readable:false misses but still persists" (fun () ->
        with_dir (fun dir ->
            let k = Store.key [ ("cell", "f") ] in
            let s = Store.open_store dir in
            Store.add s k (Json.Int 3);
            Store.close s;
            let s = Store.open_store ~readable:false dir in
            check_bool "no-cache miss" true (Store.find s k = None);
            Store.add s k (Json.Int 4);
            check_bool "still misses" true (Store.find s k = None);
            Store.close s;
            let s = Store.open_store dir in
            check_bool "fresh value won" true (Store.find s k = Some (Json.Int 4))));
    case "a newer on-disk format refuses to open" (fun () ->
        with_dir (fun dir ->
            Sys.mkdir dir 0o755;
            write_file (Filename.concat dir "index.json")
              "{\"version\": 99, \"records\": 0}\n";
            match Store.open_store dir with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "opened a future-format store"));
    case "exists only after a store was created" (fun () ->
        with_dir (fun dir ->
            check_bool "fresh dir" false (Store.exists dir);
            Store.close (Store.open_store dir);
            check_bool "after open" true (Store.exists dir)));
    case "ambient store set / current" (fun () ->
        with_dir (fun dir ->
            let s = Store.open_store dir in
            check_bool "none by default" true (Store.current () = None);
            Store.set_current (Some s);
            Fun.protect
              ~finally:(fun () -> Store.set_current None)
              (fun () -> check_bool "visible" true (Store.current () = Some s));
            check_bool "cleared" true (Store.current () = None)));
  ]

(* --- interrupt / resume byte-identity -------------------------------------- *)

let with_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let with_constant_clock f =
  Obs.Trace.set_clock (fun () -> 0.);
  (* lint: allow no-wall-clock — restores the default clock source after the pinned-clock scope *)
  Fun.protect ~finally:(fun () -> Obs.Trace.set_clock Sys.time) f

(* Run one registry experiment, returning the rendered table and the
   telemetry stream in emission order (the writer is what telemetry.jsonl
   hangs off, so list equality here is stream byte-identity). *)
let run_table ?store ?(jobs = 1) id =
  let records = ref [] in
  let m = Mutex.create () in
  let table =
    with_jobs jobs (fun () ->
        with_constant_clock (fun () ->
            Store.set_current store;
            Telemetry.set_writer
              (Some (fun r -> Mutex.protect m (fun () -> records := r :: !records)));
            Fun.protect
              ~finally:(fun () ->
                Telemetry.set_writer None;
                Store.set_current None)
              (fun () ->
                match Registry.find id with
                | None -> Alcotest.failf "unknown experiment %S" id
                | Some e -> e.Registry.run Profile.smoke)))
  in
  (table, List.rev !records)

(* Compare telemetry streams record by record; on the first divergence
   show both sides (far more useful than a bare false). *)
let check_same_stream label expected actual =
  let render r = Json.to_string (Telemetry.to_json r) in
  let rec go i = function
    | [], [] -> ()
    | e :: es, a :: aas ->
        if e <> a then
          Alcotest.failf "%s: record %d differs\n  expected %s\n  actual   %s" label i
            (render e) (render a)
        else go (i + 1) (es, aas)
    | es, aas ->
        Alcotest.failf "%s: length %d vs %d" label (i + List.length es)
          (i + List.length aas)
  in
  go 0 (expected, actual)

let resume_case id =
  case (Printf.sprintf "interrupted %s resumes byte-identically" id) (fun () ->
      with_dir (fun dir_a ->
          with_dir (fun dir_b ->
              (* Cold run, every cell computed and persisted. *)
              let store_a = Store.open_store dir_a in
              let table_cold, telemetry_cold = run_table ~store:store_a id in
              Store.close store_a;
              check_bool "cells persisted" true ((Store.stats store_a).Store.writes > 0);
              let cells = objects dir_a in
              check_bool "several cells" true (List.length cells >= 2);
              (* "Interrupt": a store holding only half the cells, as
                 left behind by a run killed partway. Atomic renames
                 guarantee the survivors are whole records. *)
              Sys.mkdir dir_b 0o755;
              Sys.mkdir (Filename.concat dir_b "objects") 0o755;
              List.iteri
                (fun i f ->
                  if i mod 2 = 0 then
                    write_file
                      (Filename.concat (Filename.concat dir_b "objects") f)
                      (read_file (Filename.concat (Filename.concat dir_a "objects") f)))
                cells;
              let store_b = Store.open_store dir_b in
              let table_resumed, telemetry_resumed = run_table ~store:store_b id in
              Store.close store_b;
              let st = Store.stats store_b in
              check_bool "replayed some cells" true (st.Store.hits > 0);
              check_bool "computed the rest" true (st.Store.misses > 0);
              Alcotest.(check string) "resumed table" table_cold table_resumed;
              check_same_stream "resumed telemetry stream" telemetry_cold
                telemetry_resumed;
              check_bool "store completed" true
                (List.length (objects dir_b) = List.length cells);
              (* Fully warm: everything replays, nothing recomputes. *)
              let store_b = Store.open_store dir_b in
              let table_warm, telemetry_warm = run_table ~store:store_b id in
              let st = Store.stats store_b in
              check_int "no recomputation" 0 st.Store.misses;
              check_bool "all hits" true (st.Store.hits > 0);
              Alcotest.(check string) "warm table" table_cold table_warm;
              check_same_stream "warm telemetry stream" telemetry_cold telemetry_warm;
              (* And the cache is jobs-agnostic: a parallel resumed run
                 renders the same table (stream order may differ). *)
              let store_b4 = Store.open_store dir_b in
              let table_par, telemetry_par = run_table ~store:store_b4 ~jobs:4 id in
              Alcotest.(check string) "jobs 4 table" table_cold table_par;
              let sorted_stream rs =
                List.sort String.compare
                  (List.map (fun r -> Json.to_string (Telemetry.to_json r)) rs)
              in
              check_bool "jobs 4 telemetry (sorted)" true
                (sorted_stream telemetry_cold = sorted_stream telemetry_par))))

let resume_tests = [ resume_case "table1"; resume_case "geometric" ]

let () =
  Alcotest.run "store"
    [
      ("keys", key_tests);
      ("store", store_tests);
      ("resume", resume_tests);
    ]
