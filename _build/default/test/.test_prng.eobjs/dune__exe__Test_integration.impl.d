test/test_integration.ml: Alcotest Filename Fun Gbisect Helpers List Printf Sys Unix
