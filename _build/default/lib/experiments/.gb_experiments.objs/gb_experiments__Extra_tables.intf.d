lib/experiments/extra_tables.mli: Profile
