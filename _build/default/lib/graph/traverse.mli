(** Graph traversals and connectivity utilities.

    Used by the generators (to check that planted graphs come out
    connected when required), by the DFS-stripe initial bisection the
    paper alludes to for very sparse graphs, and throughout the tests. *)

val bfs_distances : Csr.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [-1]. *)

val bfs_order : Csr.t -> int -> int list
(** Vertices in BFS discovery order from [src] (its component only). *)

val dfs_order : Csr.t -> int -> int list
(** Vertices in iterative DFS preorder from [src] (its component only).
    Neighbours are explored in decreasing id order so the order is
    deterministic. *)

val components : Csr.t -> int array * int
(** [components g] is [(label, count)]: [label.(v)] is the component
    index of [v], components are numbered [0 .. count-1] by smallest
    member. *)

val component_sizes : Csr.t -> int array
(** Sizes indexed by component label. *)

val is_connected : Csr.t -> bool

val is_bipartite : Csr.t -> bool

val spanning_forest : Csr.t -> (int * int) list
(** BFS forest edges, one list for the whole graph. *)

val bridges : Csr.t -> (int * int) list
(** All bridge edges (whose removal disconnects their component), as
    [(u, v)] with [u < v], by iterative low-link DFS. A graph with a
    bridge and both sides of equal order has bisection width <= the
    bridge weight — the structure behind the width-1 tree family. *)

val articulation_points : Csr.t -> int list
(** Cut vertices, ascending. *)

val eccentricity : Csr.t -> int -> int
(** Max distance from the vertex within its component. *)

val diameter : Csr.t -> int
(** Exact diameter of a {e connected} graph (all-sources BFS; O(nm)).
    @raise Invalid_argument if the graph is disconnected or empty. *)
