lib/prng/lfg.ml: Array
