module Csr = Gb_graph.Csr

let clique ?(scale = 12) h =
  if scale < 1 then invalid_arg "Expansion.clique: scale must be >= 1";
  let edges = ref [] in
  for e = 0 to Hgraph.n_nets h - 1 do
    let members = Hgraph.net_members h e in
    let s = Array.length members in
    if s >= 2 then begin
      let w = max 1 (int_of_float (Float.round (float_of_int scale /. float_of_int (s - 1)))) in
      for i = 0 to s - 1 do
        for j = i + 1 to s - 1 do
          edges := (members.(i), members.(j), w) :: !edges
        done
      done
    end
  done;
  Csr.of_edges ~n:(Hgraph.n_vertices h) !edges

let star ?(scale = 1) h =
  if scale < 1 then invalid_arg "Expansion.star: scale must be >= 1";
  let n = Hgraph.n_vertices h in
  let edges = ref [] in
  for e = 0 to Hgraph.n_nets h - 1 do
    Hgraph.iter_net h e (fun v -> edges := (v, n + e, scale) :: !edges)
  done;
  (Csr.of_edges ~n:(n + Hgraph.n_nets h) !edges, n)

let star_cells_only h side =
  let n = Hgraph.n_vertices h in
  if Array.length side < n then invalid_arg "Expansion.star_cells_only: side too short";
  Array.sub side 0 n
