lib/hyper/hcoarsen.ml: Array Gb_prng Hfm Hgraph List
