test/test_experiments.ml: Alcotest Gb_experiments Gbisect Helpers List String
