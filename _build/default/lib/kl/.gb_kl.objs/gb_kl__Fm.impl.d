lib/kl/fm.ml: Array Gain_buckets Gb_graph Gb_partition List
