(** Benches for the paper's five narrative Observations (§VI).

    Each returns a rendered table whose shape — not absolute numbers —
    is the claim under reproduction:

    - {!degree_sweep} (Obs 1): on [Gbreg] graphs, solution quality and
      speed improve as the regular degree grows from 3 to 6; at degree
      >= 4 the planted width is found.
    - {!compaction_sweep} (Obs 2): compaction's relative improvement on
      degree-3 graphs grows with instance size, and CKL is not slower
      than KL.
    - {!kl_vs_sa} (Obs 4/5): head-to-head quality and time of all four
      algorithms over a mixed corpus, with per-family win counts —
      including the tree/ladder rows where the paper saw SA ahead. *)

val degree_sweep : Profile.t -> string
(** E-O1. *)

val compaction_sweep : Profile.t -> string
(** E-O2. *)

val kl_vs_sa : Profile.t -> string
(** E-O4. *)
