lib/models/small_world.mli: Gb_graph Gb_prng
