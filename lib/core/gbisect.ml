module Rng = Gb_prng.Rng
module Lfg = Gb_prng.Lfg
module Graph = Gb_graph.Csr
module Builder = Gb_graph.Builder
module Bitset = Gb_graph.Bitset
module Classic = Gb_graph.Classic
module Traverse = Gb_graph.Traverse
module Graph_io = Gb_graph.Gio
module Matching = Gb_graph.Matching
module Subgraph = Gb_graph.Subgraph
module Contraction = Gb_graph.Contraction
module Product = Gb_graph.Product
module Gnp = Gb_models.Gnp
module Planted = Gb_models.Planted
module Bregular = Gb_models.Bregular
module Degree_seq = Gb_models.Degree_seq
module Geometric = Gb_models.Geometric
module Small_world = Gb_models.Small_world
module Bisection = Gb_partition.Bisection
module Initial = Gb_partition.Initial
module Exact = Gb_partition.Exact
module Spectral = Gb_partition.Spectral
module Cycles = Gb_partition.Cycles
module Metrics = Gb_partition.Metrics
module Tree_exact = Gb_partition.Tree_exact
module Kl = Gb_kl.Kl
module Fm = Gb_kl.Fm
module Gain_buckets = Gb_kl.Gain_buckets
module Sa = Gb_anneal.Sa
module Schedule = Gb_anneal.Schedule
module Sa_bisect = Gb_anneal.Sa_bisect
module Threshold = Gb_anneal.Threshold
module Compaction = Gb_compaction.Compaction
module Kway = Gb_compaction.Kway
module Xsa = Gb_race.Xsa
module Race = Gb_race.Race
module Hgraph = Gb_hyper.Hgraph
module Hfm = Gb_hyper.Hfm
module Expansion = Gb_hyper.Expansion
module Netlist_io = Gb_hyper.Netlist_io
module Random_netlist = Gb_hyper.Random_netlist
module Hcoarsen = Gb_hyper.Hcoarsen
module Placement = Gb_hyper.Placement
module Hsa = Gb_hyper.Hsa
module Obs = Gb_obs
module Pool = Gb_par.Pool
module Store = Gb_store.Store
module Lint = Gb_lint.Lint
module Lint_rules = Gb_lint.Rules
module Lint_program = Gb_lint.Program
module Fuzz = Gb_check.Fuzz
module Fuzz_generators = Gb_check.Generators
module Fuzz_oracles = Gb_check.Oracles
module Fuzz_shrink = Gb_check.Shrink
module Serve_protocol = Gb_serve.Protocol
module Serve = Gb_serve.Server
module Serve_client = Gb_serve.Client
module Bombard = Gb_serve.Bombard
module Profile = Gb_experiments.Profile
module Runner = Gb_experiments.Runner
module Registry = Gb_experiments.Registry
module Experiment_table = Gb_experiments.Table
module Perf_suite = Gb_experiments.Perf_suite
module Scale_suite = Gb_experiments.Scale_suite

type algorithm = [ `Kl | `Sa | `Ckl | `Csa | `Fm | `Multilevel | `Mlfm | `Xsa ]

let algorithm_name = function
  | `Kl -> "KL"
  | `Sa -> "SA"
  | `Ckl -> "CKL"
  | `Csa -> "CSA"
  | `Fm -> "FM"
  | `Multilevel -> "MLKL"
  | `Mlfm -> "MLFM"
  | `Xsa -> "XSA"

type ml_config = { min_vertices : int; max_levels : int; coarse_starts : int }

let default_ml_config = { min_vertices = 64; max_levels = 20; coarse_starts = 1 }

type result = { bisection : Bisection.t; algorithm : algorithm; seconds : float }

let run_once ?(ml = default_ml_config) algorithm rng g =
  let recursive refiner rng g =
    fst
      (Compaction.recursive ~min_vertices:ml.min_vertices ~max_levels:ml.max_levels
         ~coarse_starts:ml.coarse_starts ~refiner rng g)
  in
  match algorithm with
  | `Kl -> fst (Kl.run rng g)
  | `Sa -> fst (Sa_bisect.run rng g)
  | `Ckl -> fst (Compaction.ckl rng g)
  | `Csa -> fst (Compaction.csa rng g)
  | `Fm -> fst (Fm.run rng g)
  | `Multilevel -> recursive (Compaction.kl_refiner ()) rng g
  | `Mlfm -> recursive (Compaction.fm_refiner ()) rng g
  | `Xsa -> fst (Xsa.run rng g)

let solve ?(algorithm = `Ckl) ?(starts = 2) ?ml rng g =
  if starts < 1 then invalid_arg "Gbisect.solve: starts must be >= 1";
  let t0 = Obs.Clock.now () in
  (* Starts run on the ambient pool (--jobs) with per-start substreams,
     so the result is bit-identical at any job count; ties between
     equal cuts go to the lowest start index, like the sequential loop. *)
  let base = Rng.derive_seed rng in
  let best =
    Pool.best_by (Pool.current ())
      ~compare:(fun a b -> Int.compare (Bisection.cut a) (Bisection.cut b))
      (fun i -> run_once ?ml algorithm (Rng.substream ~base i) g)
      starts
  in
  { bisection = best; algorithm; seconds = Obs.Clock.now () -. t0 }

(* The portfolio order is part of the determinism contract: backend i
   runs on substream i of one derived base, and Race breaks cut ties to
   the lowest index — so both the winner and every loser's cut are
   byte-identical at any --jobs value. *)
let default_portfolio : algorithm list = [ `Kl; `Ckl; `Mlfm; `Xsa ]

let race ?(portfolio = default_portfolio) ?(starts = 1) ?ml rng g =
  if portfolio = [] then invalid_arg "Gbisect.race: empty portfolio";
  if starts < 1 then invalid_arg "Gbisect.race: starts must be >= 1";
  let backends =
    List.map
      (fun a ->
        {
          Race.name = Serve_protocol.algorithm_id a;
          solve =
            (fun rng g -> (solve ~algorithm:a ~starts ?ml rng g).bisection);
        })
      portfolio
  in
  Race.run ~backends rng g
