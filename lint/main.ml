(* Standalone lint runner (bench-style): analyse OCaml sources with the
   Gb_lint determinism & domain-safety rules.

   Usage:
     dune exec lint/main.exe -- [--json] [--rules] [--program] [paths...]
     dune build @lint                      # lib bin bench test, fails on findings

   Paths default to lib bin bench test (plus examples and lint in
   --program mode). Directories are walked for .ml/.mli files; explicit
   file arguments are linted whatever their suffix. Exit codes follow
   the repo contract: 0 clean, 1 findings, 2 usage. *)

module Lint = Gb_lint.Lint
module Program = Gb_lint.Program

let default_paths = [ "lib"; "bin"; "bench"; "test" ]
let program_paths = [ "lib"; "bin"; "bench"; "test"; "examples"; "lint" ]

let usage () =
  print_endline
    "usage: main.exe [--json] [--rules] [--program] [--graph FILE] [--why SYM] \
     [paths...]\n\n\
     Runs the gbisect determinism & domain-safety lint over OCaml sources\n\
     (directories are searched for .ml/.mli; defaults: lib bin bench test).\n\n\
     --json        machine-readable one-line JSON report on stdout\n\
     --rules       print the rule catalogue and exit\n\
     --program     whole-program analysis (cross-module call graph rules)\n\
     --graph FILE  write the call graph as Graphviz DOT (implies --program)\n\
     --why SYM     print the parallel-region chain for a symbol (implies --program)\n\n\
     exit codes: 0 clean, 1 findings, 2 usage"

let () =
  let json = ref false
  and rules = ref false
  and program = ref false
  and graph_out = ref None
  and why = ref None
  and paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: tl ->
        json := true;
        parse tl
    | "--rules" :: tl ->
        rules := true;
        parse tl
    | "--program" :: tl ->
        program := true;
        parse tl
    | "--graph" :: file :: tl ->
        graph_out := Some file;
        parse tl
    | "--why" :: sym :: tl ->
        why := Some sym;
        parse tl
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        Printf.eprintf "gbisect-lint: unknown or incomplete flag %s\n" flag;
        usage ();
        exit 2
    | p :: tl ->
        paths := p :: !paths;
        parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !rules then begin
    print_string (Lint.rules_doc ());
    exit 0
  end;
  let program = !program || !graph_out <> None || !why <> None in
  let paths =
    match List.rev !paths with
    | [] ->
        List.filter Sys.file_exists
          (if program then program_paths else default_paths)
    | ps -> ps
  in
  if not program then begin
    match Lint.lint_paths paths with
    | Error msg ->
        Printf.eprintf "gbisect-lint: %s\n" msg;
        exit 2
    | Ok report ->
        if !json then print_endline (Lint.render_json report)
        else print_string (Lint.render_human report);
        Printf.eprintf "gbisect-lint: %s\n" (Lint.summary report);
        exit (Lint.exit_code report)
  end
  else begin
    match Lint.lint_program paths with
    | Error msg ->
        Printf.eprintf "gbisect-lint: %s\n" msg;
        exit 2
    | Ok (report, prog) -> (
        Option.iter
          (fun file ->
            Out_channel.with_open_bin file (fun oc ->
                Out_channel.output_string oc (Program.to_dot prog)))
          !graph_out;
        match !why with
        | Some symbol -> (
            match Program.find_symbol prog symbol with
            | None ->
                Printf.eprintf "gbisect-lint: --why: no definition named %s\n"
                  symbol;
                exit 2
            | Some node -> (
                match Program.chain prog node.Program.n_id with
                | [] ->
                    Printf.printf
                      "%s is not reachable from any parallel region\n"
                      node.Program.n_display;
                    exit 0
                | chain ->
                    Printf.printf "%s is inside a parallel region via:\n  %s\n"
                      node.Program.n_display
                      (String.concat "\n  -> " chain);
                    exit 0))
        | None ->
            if !json then print_endline (Lint.render_json report)
            else print_string (Lint.render_human report);
            let modules, defs, edges, par = Program.stats prog in
            Printf.eprintf
              "gbisect-lint: %s (graph: %d modules, %d defs, %d edges, %d \
               parallel-reachable)\n"
              (Lint.summary report) modules defs edges par;
            exit (Lint.exit_code report))
  end
