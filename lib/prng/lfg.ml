(* Subtractive lagged-Fibonacci generator, Knuth's ran_array design:
   lags (100, 37), modulus 2^30. The state is a circular buffer of the
   last [long_lag] outputs; an output is x.(i-100) - x.(i-37) mod 2^30.

   Seeding follows the spirit of Knuth's ran_start: the buffer is filled
   from a 64-bit SplitMix-style scrambler of the seed (which is itself a
   high-quality generator), then the lagged recurrence is warmed up for
   10 * long_lag steps so that any residual seed structure is diffused. *)

let long_lag = 100
let short_lag = 37
let bits = 30
let modulus = 1 lsl bits
let mask = modulus - 1

type t = {
  state : int array; (* circular buffer of [long_lag] previous outputs *)
  mutable pos : int; (* index of the next cell to produce/overwrite *)
}

(* SplitMix-style step used only for seeding. OCaml ints are 63-bit, so
   the classical 64-bit constants are truncated to 62 bits; the mixing
   quality is more than enough for filling a warm-up buffer. *)
let splitmix_next s =
  let s = s + 0x1E3779B97F4A7C15 in
  let z = s in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (s, z lxor (z lsr 31))

let raw_next t =
  let i = t.pos in
  let j = i - short_lag in
  let j = if j < 0 then j + long_lag else j in
  let v = (t.state.(i) - t.state.(j)) land mask in
  t.state.(i) <- v;
  t.pos <- (if i + 1 = long_lag then 0 else i + 1);
  v

let create ~seed =
  let state = Array.make long_lag 0 in
  let s = ref seed in
  for i = 0 to long_lag - 1 do
    let s', z = splitmix_next !s in
    s := s';
    state.(i) <- z land mask
  done;
  (* Guarantee at least one odd value so the stream is not degenerate. *)
  if Array.for_all (fun v -> v land 1 = 0) state then state.(0) <- state.(0) lor 1;
  let t = { state; pos = 0 } in
  for _ = 1 to 10 * long_lag do
    ignore (raw_next t)
  done;
  t

let copy t = { state = Array.copy t.state; pos = t.pos }
let next = raw_next

let derive_seed t =
  (* Two draws packed into a 60-bit seed; advances the parent by
     exactly two outputs no matter what is done with the result. *)
  let hi = raw_next t in
  let lo = raw_next t in
  (hi lsl bits) lor lo

let split t = create ~seed:(derive_seed t)

let mix_seed base salt =
  (* One SplitMix scramble of [base] perturbed by [salt] times the
     golden-ratio increment: for a fixed base, distinct salts give
     decorrelated seeds (this is exactly how SplitMix64 derives its
     output sequence from a counter). *)
  let _, z = splitmix_next (base + (salt * 0x1E3779B97F4A7C15)) in
  z land max_int

let self_test () =
  let g1 = create ~seed:42 and g2 = create ~seed:42 in
  let deterministic = ref true and in_range = ref true in
  for _ = 1 to 1000 do
    let a = next g1 and b = next g2 in
    if a <> b then deterministic := false;
    if a < 0 || a >= modulus then in_range := false
  done;
  let g3 = create ~seed:43 in
  let differs = ref false in
  for _ = 1 to 1000 do
    if next g1 <> next g3 then differs := true
  done;
  !deterministic && !in_range && !differs
