lib/graph/classic.ml: Csr List
