(* Tests for the lagged-Fibonacci PRNG and the variate toolkit. *)

module Lfg = Gbisect.Lfg
module Rng = Gbisect.Rng

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* --- Lfg core -------------------------------------------------------- *)

let lfg_tests =
  [
    case "self_test passes" (fun () -> check_bool "self test" true (Lfg.self_test ()));
    case "deterministic for equal seeds" (fun () ->
        let a = Lfg.create ~seed:123 and b = Lfg.create ~seed:123 in
        for i = 1 to 5000 do
          check_int (Printf.sprintf "draw %d" i) (Lfg.next a) (Lfg.next b)
        done);
    case "different seeds diverge" (fun () ->
        let a = Lfg.create ~seed:1 and b = Lfg.create ~seed:2 in
        let same = ref 0 in
        for _ = 1 to 1000 do
          if Lfg.next a = Lfg.next b then incr same
        done;
        check_bool "streams differ" true (!same < 10));
    case "outputs stay in range" (fun () ->
        let g = Lfg.create ~seed:77 in
        for _ = 1 to 10_000 do
          let v = Lfg.next g in
          check_bool "in [0, modulus)" true (v >= 0 && v < Lfg.modulus)
        done);
    case "copy reproduces the tail" (fun () ->
        let a = Lfg.create ~seed:5 in
        for _ = 1 to 137 do
          ignore (Lfg.next a)
        done;
        let b = Lfg.copy a in
        for i = 1 to 1000 do
          check_int (Printf.sprintf "tail draw %d" i) (Lfg.next a) (Lfg.next b)
        done);
    case "split streams look independent" (fun () ->
        let a = Lfg.create ~seed:9 in
        let b = Lfg.split a in
        let matches = ref 0 in
        for _ = 1 to 1000 do
          if Lfg.next a = Lfg.next b then incr matches
        done;
        check_bool "few collisions" true (!matches < 10));
    case "mean is near the middle of the range" (fun () ->
        let g = Lfg.create ~seed:31 in
        let n = 200_000 in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. float_of_int (Lfg.next g)
        done;
        let mean = !sum /. float_of_int n /. float_of_int Lfg.modulus in
        (* sd of the mean ~ 1/sqrt(12 n) ~ 0.00065; allow 5 sigma. *)
        check_bool "mean in [0.497, 0.503]" true (mean > 0.497 && mean < 0.503));
    case "bits distribute evenly" (fun () ->
        let g = Lfg.create ~seed:99 in
        let ones = Array.make Lfg.bits 0 in
        let n = 20_000 in
        for _ = 1 to n do
          let v = Lfg.next g in
          for b = 0 to Lfg.bits - 1 do
            if v land (1 lsl b) <> 0 then ones.(b) <- ones.(b) + 1
          done
        done;
        Array.iteri
          (fun b c ->
            let frac = float_of_int c /. float_of_int n in
            check_bool
              (Printf.sprintf "bit %d frac %.3f in [0.48,0.52]" b frac)
              true
              (frac > 0.48 && frac < 0.52))
          ones);
  ]

(* --- Rng variates ----------------------------------------------------- *)

let int_tests =
  [
    case "int respects the bound" (fun () ->
        let r = Helpers.rng () in
        for n = 1 to 50 do
          for _ = 1 to 200 do
            let v = Rng.int r n in
            check_bool "0 <= v < n" true (v >= 0 && v < n)
          done
        done);
    case "int rejects non-positive bounds" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int") (fun () ->
            ignore (Rng.int r 0));
        Alcotest.check_raises "negative" (Invalid_argument "Rng.int") (fun () ->
            ignore (Rng.int r (-3))));
    case "int n=1 is always 0" (fun () ->
        let r = Helpers.rng () in
        for _ = 1 to 100 do
          check_int "only value" 0 (Rng.int r 1)
        done);
    case "int is roughly uniform" (fun () ->
        let r = Helpers.rng () in
        let n = 10 in
        let counts = Array.make n 0 in
        let draws = 50_000 in
        for _ = 1 to draws do
          let v = Rng.int r n in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iteri
          (fun i c ->
            let frac = float_of_int c /. float_of_int draws in
            check_bool (Printf.sprintf "bucket %d near 0.1" i) true
              (frac > 0.08 && frac < 0.12))
          counts);
    case "int_in covers both endpoints" (fun () ->
        let r = Helpers.rng () in
        let lo = -3 and hi = 3 in
        let seen = Hashtbl.create 8 in
        for _ = 1 to 2000 do
          let v = Rng.int_in r lo hi in
          check_bool "in range" true (v >= lo && v <= hi);
          Hashtbl.replace seen v ()
        done;
        check_int "all 7 values seen" 7 (Hashtbl.length seen));
    case "int_in rejects inverted ranges" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "inverted" (Invalid_argument "Rng.int_in") (fun () ->
            ignore (Rng.int_in r 5 4)));
  ]

let float_tests =
  [
    case "float stays below the bound" (fun () ->
        let r = Helpers.rng () in
        for _ = 1 to 10_000 do
          let v = Rng.float r 2.5 in
          check_bool "in [0, 2.5)" true (v >= 0. && v < 2.5)
        done);
    case "bool is fair-ish" (fun () ->
        let r = Helpers.rng () in
        let heads = ref 0 in
        let n = 20_000 in
        for _ = 1 to n do
          if Rng.bool r then incr heads
        done;
        let frac = float_of_int !heads /. float_of_int n in
        check_bool "frac near 0.5" true (frac > 0.47 && frac < 0.53));
    case "bernoulli extremes" (fun () ->
        let r = Helpers.rng () in
        for _ = 1 to 100 do
          check_bool "p=0 never" false (Rng.bernoulli r 0.);
          check_bool "p=1 always" true (Rng.bernoulli r 1.)
        done);
    case "bernoulli respects p" (fun () ->
        let r = Helpers.rng () in
        let hits = ref 0 in
        let n = 50_000 in
        for _ = 1 to n do
          if Rng.bernoulli r 0.2 then incr hits
        done;
        let frac = float_of_int !hits /. float_of_int n in
        check_bool "frac near 0.2" true (frac > 0.18 && frac < 0.22));
    case "geometric_skip mean matches (1-p)/p" (fun () ->
        let r = Helpers.rng () in
        let p = 0.1 in
        let n = 50_000 in
        let sum = ref 0 in
        for _ = 1 to n do
          sum := !sum + Rng.geometric_skip r p
        done;
        let mean = float_of_int !sum /. float_of_int n in
        check_bool "mean near 9" true (mean > 8.5 && mean < 9.5));
    case "geometric_skip p=1 is always 0" (fun () ->
        let r = Helpers.rng () in
        for _ = 1 to 100 do
          check_int "no failures" 0 (Rng.geometric_skip r 1.0)
        done);
    case "geometric_skip rejects p<=0" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "p=0" (Invalid_argument "Rng.geometric_skip") (fun () ->
            ignore (Rng.geometric_skip r 0.)));
    case "exponential mean matches 1/lambda" (fun () ->
        let r = Helpers.rng () in
        let n = 50_000 in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. Rng.exponential r 2.0
        done;
        let mean = !sum /. float_of_int n in
        check_bool "mean near 0.5" true (mean > 0.48 && mean < 0.52));
  ]

let collection_tests =
  [
    case "shuffle permutes (multiset preserved)" (fun () ->
        let r = Helpers.rng () in
        let a = Array.init 100 (fun i -> i) in
        let b = Rng.shuffle r a in
        let sa = List.sort Int.compare (Array.to_list a) in
        let sb = List.sort Int.compare (Array.to_list b) in
        Alcotest.(check (list int)) "same elements" sa sb);
    case "shuffle_in_place leaves length" (fun () ->
        let r = Helpers.rng () in
        let a = Array.init 17 (fun i -> i * i) in
        Rng.shuffle_in_place r a;
        check_int "length" 17 (Array.length a));
    case "permutation is a permutation" (fun () ->
        let r = Helpers.rng () in
        for n = 1 to 30 do
          let p = Rng.permutation r n in
          let seen = Array.make n false in
          Array.iter (fun v -> seen.(v) <- true) p;
          check_bool (Printf.sprintf "n=%d all present" n) true (Array.for_all Fun.id seen)
        done);
    case "permutation mixes positions" (fun () ->
        (* Position 0 should receive each value about uniformly. *)
        let r = Helpers.rng () in
        let n = 8 in
        let counts = Array.make n 0 in
        let draws = 16_000 in
        for _ = 1 to draws do
          let p = Rng.permutation r n in
          counts.(p.(0)) <- counts.(p.(0)) + 1
        done;
        Array.iteri
          (fun v c ->
            let frac = float_of_int c /. float_of_int draws in
            check_bool (Printf.sprintf "value %d at pos 0" v) true
              (frac > 0.10 && frac < 0.15))
          counts);
    case "pick returns members" (fun () ->
        let r = Helpers.rng () in
        let a = [| 2; 4; 8 |] in
        for _ = 1 to 100 do
          let v = Rng.pick r a in
          check_bool "member" true (Array.exists (( = ) v) a)
        done);
    case "pick rejects empty" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick") (fun () ->
            ignore (Rng.pick r [||])));
    case "pick_list rejects empty" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick_list") (fun () ->
            ignore (Rng.pick_list r [])));
    case "sample_without_replacement: distinct, in range, right size" (fun () ->
        let r = Helpers.rng () in
        List.iter
          (fun (k, n) ->
            let s = Rng.sample_without_replacement r ~k ~n in
            check_int (Printf.sprintf "k=%d n=%d size" k n) k (Array.length s);
            let seen = Hashtbl.create 16 in
            Array.iter
              (fun v ->
                check_bool "in range" true (v >= 0 && v < n);
                check_bool "distinct" false (Hashtbl.mem seen v);
                Hashtbl.add seen v ())
              s)
          [ (0, 10); (1, 1); (3, 100); (50, 100); (99, 100); (100, 100); (5, 1000) ]);
    case "sample_without_replacement covers uniformly" (fun () ->
        let r = Helpers.rng () in
        let counts = Array.make 20 0 in
        let draws = 20_000 in
        for _ = 1 to draws do
          Array.iter (fun v -> counts.(v) <- counts.(v) + 1)
            (Rng.sample_without_replacement r ~k:2 ~n:20)
        done;
        Array.iteri
          (fun v c ->
            let frac = float_of_int c /. float_of_int (2 * draws) in
            check_bool (Printf.sprintf "element %d" v) true (frac > 0.04 && frac < 0.06))
          counts);
    case "sample_without_replacement rejects k > n" (fun () ->
        let r = Helpers.rng () in
        Alcotest.check_raises "k>n"
          (Invalid_argument "Rng.sample_without_replacement")
          (fun () -> ignore (Rng.sample_without_replacement r ~k:5 ~n:4)));
    case "seed_of_string is stable and spreads" (fun () ->
        check_int "stable" (Rng.seed_of_string "abc") (Rng.seed_of_string "abc");
        check_bool "spreads" true (Rng.seed_of_string "abc" <> Rng.seed_of_string "abd");
        check_bool "non-negative" true (Rng.seed_of_string "x" >= 0));
    case "split child differs from parent continuation" (fun () ->
        let r = Helpers.rng () in
        let child = Rng.split r in
        let collisions = ref 0 in
        for _ = 1 to 1000 do
          if Rng.int r 1_000_000 = Rng.int child 1_000_000 then incr collisions
        done;
        check_bool "few collisions" true (!collisions < 5));
  ]

let () =
  Alcotest.run "prng"
    [
      ("lfg", lfg_tests);
      ("int variates", int_tests);
      ("float variates", float_tests);
      ("collections", collection_tests);
    ]
