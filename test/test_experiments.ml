(* Tests for the experiment harness: profiles, table rendering, the
   runner protocol and the registry. Experiment *content* runs under the
   smoke profile to stay fast. *)

module Profile = Gbisect.Profile
module Runner = Gbisect.Runner
module Registry = Gbisect.Registry
module Table = Gbisect.Experiment_table
module Classic = Gbisect.Classic
module Rng = Gbisect.Rng

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* --- Profile ---------------------------------------------------------------- *)

let profile_tests =
  [
    case "by_name resolves all spellings" (fun () ->
        check_bool "smoke" true (Profile.by_name "smoke" <> None);
        check_bool "quick" true (Profile.by_name "quick" <> None);
        check_bool "paper" true (Profile.by_name "paper" <> None);
        check_bool "full alias" true (Profile.by_name "full" <> None);
        check_bool "unknown" true (Profile.by_name "nope" = None));
    case "scaled is even and bounded below" (fun () ->
        check_bool "even" true (Profile.scaled Profile.quick 5000 land 1 = 0);
        check_bool "floor" true (Profile.scaled Profile.smoke 50 >= 16);
        check_int "paper keeps size" 5000 (Profile.scaled Profile.paper 5000));
    case "profiles have sane knobs" (fun () ->
        List.iter
          (fun p ->
            check_bool (p.Profile.name ^ " starts") true (p.Profile.starts >= 1);
            check_bool (p.Profile.name ^ " replicates") true (p.Profile.replicates >= 1);
            Gbisect.Schedule.validate p.Profile.sa_schedule)
          [ Profile.smoke; Profile.quick; Profile.paper ]);
  ]

(* --- Table rendering ----------------------------------------------------------- *)

let table_tests =
  [
    case "render aligns columns and includes notes" (fun () ->
        let out =
          Table.render ~title:"T" ~notes:[ "hello" ]
            ~header:[ "a"; "value" ]
            [ [ "row1"; "1" ]; [ "longer-row"; "22" ] ]
        in
        check_bool "title" true (Helpers.contains out "T\n");
        check_bool "note" true (Helpers.contains out "note: hello");
        check_bool "separator" true (Helpers.contains out "---");
        (* numeric cells right-aligned: " 1" under "value" *)
        check_bool "right aligned" true (Helpers.contains out "    1"));
    case "short rows are padded" (fun () ->
        let out = Table.render ~title:"T" ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
        check_bool "renders" true (String.length out > 0));
    case "improvement_pct" (fun () ->
        Alcotest.(check (float 1e-9)) "50%" 50. (Table.improvement_pct ~base:10. ~improved:5.);
        Alcotest.(check (float 1e-9)) "0 base" 0. (Table.improvement_pct ~base:0. ~improved:5.);
        Alcotest.(check (float 1e-9)) "worse" (-100.)
          (Table.improvement_pct ~base:5. ~improved:10.));
    case "mean and stddev" (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2. (Table.mean [ 1.; 2.; 3. ]);
        Alcotest.(check (float 1e-9)) "empty mean" 0. (Table.mean []);
        Alcotest.(check (float 1e-9)) "stddev" 1. (Table.stddev [ 1.; 2.; 3. ]);
        Alcotest.(check (float 1e-9)) "singleton" 0. (Table.stddev [ 4. ]));
    case "stddev never goes nan on degenerate samples" (fun () ->
        (* regression: n-1 = 0 must report "no spread", not nan, or the
           rendered tables and strict JSON both blow up downstream *)
        List.iter
          (fun xs -> check_bool "finite" true (Float.is_finite (Table.stddev xs)))
          [ []; [ 0. ]; [ 7.5 ]; [ 3.; 3.; 3. ] ]);
    case "run and quad JSON codecs invert" (fun () ->
        let run cut = { Runner.cut; seconds = 0.125 *. float_of_int cut; balanced = cut mod 2 = 0 } in
        let r = run 9 in
        check_bool "run" true (Runner.run_of_json (Runner.run_to_json r) = Some r);
        let q = { Runner.bsa = run 4; bcsa = run 3; bkl = run 8; bckl = run 1 } in
        check_bool "quad" true (Runner.quad_of_json (Runner.quad_to_json q) = Some q);
        check_bool "mismatch is None" true
          (Runner.quad_of_json (Runner.run_to_json r) = None));
    case "to_csv quotes and escapes" (fun () ->
        let csv =
          Table.to_csv ~header:[ "a"; "b" ]
            [ [ "plain"; "with,comma" ]; [ "with\"quote"; "multi\nline" ] ]
        in
        check_bool "header" true (Helpers.contains csv "a,b\n");
        check_bool "comma quoted" true (Helpers.contains csv "\"with,comma\"");
        check_bool "quote doubled" true (Helpers.contains csv "\"with\"\"quote\"");
        check_bool "newline quoted" true (Helpers.contains csv "\"multi\nline\""));
    case "cells format" (fun () ->
        Alcotest.(check string) "int" "42" (Table.int_cell 42);
        Alcotest.(check string) "pct" "12.5%" (Table.pct_cell 12.5);
        Alcotest.(check string) "seconds" "0.123" (Table.seconds_cell 0.1234);
        Alcotest.(check string) "float" "1.50" (Table.float_cell 1.5));
  ]

(* --- Runner ----------------------------------------------------------------------- *)

let runner_tests =
  [
    case "algorithm names round-trip" (fun () ->
        List.iter
          (fun a ->
            match Runner.of_name (Runner.name a) with
            | Some a' -> check_bool "round trip" true (a = a')
            | None -> Alcotest.failf "failed on %s" (Runner.name a))
          [ Runner.Sa; Runner.Csa; Runner.Kl; Runner.Ckl; Runner.Fm; Runner.Multilevel_kl ];
        check_bool "unknown" true (Runner.of_name "zzz" = None));
    case "paper_four is SA CSA KL CKL" (fun () ->
        Alcotest.(check (list string)) "order" [ "SA"; "CSA"; "KL"; "CKL" ]
          (List.map Runner.name Runner.paper_four));
    case "run_once returns balanced runs for every algorithm" (fun () ->
        let g = Classic.grid ~rows:6 ~cols:6 in
        List.iter
          (fun a ->
            let r = Runner.run_once Profile.smoke (Helpers.rng ()) a g in
            check_bool (Runner.name a ^ " balanced") true r.Runner.balanced;
            check_bool (Runner.name a ^ " cut sane") true (r.Runner.cut >= 6);
            check_bool (Runner.name a ^ " timed") true (r.Runner.seconds >= 0.))
          [ Runner.Sa; Runner.Csa; Runner.Kl; Runner.Ckl; Runner.Fm; Runner.Multilevel_kl ]);
    case "best_of_starts keeps the best cut and sums times" (fun () ->
        let g = Classic.ladder 40 in
        let profile = { Profile.smoke with Profile.starts = 3 } in
        let one = Runner.run_once profile (Helpers.rng ()) Runner.Kl g in
        let best = Runner.best_of_starts profile (Helpers.rng ()) Runner.Kl g in
        check_bool "best <= single" true (best.Runner.cut <= max one.Runner.cut (one.Runner.cut));
        check_bool "time accumulates" true (best.Runner.seconds >= one.Runner.seconds *. 0.1));
    case "averaged_quads averages cuts" (fun () ->
        let mk c = { Runner.cut = c; seconds = 1.0; balanced = true } in
        let q c = { Runner.bsa = mk c; bcsa = mk c; bkl = mk c; bckl = mk c } in
        let avg = Runner.averaged_quads [ q 10; q 20 ] in
        check_int "mean cut" 15 avg.Runner.bsa.Runner.cut;
        Alcotest.(check (float 1e-9)) "mean seconds" 1.0 avg.Runner.bsa.Runner.seconds);
    case "averaged_quads rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Runner.averaged_quads: empty")
          (fun () -> ignore (Runner.averaged_quads [])));
  ]

(* --- Registry ----------------------------------------------------------------------- *)

let registry_tests =
  [
    case "all experiment ids are unique" (fun () ->
        let ids = Registry.ids () in
        check_int "no duplicates" (List.length ids)
          (List.length (List.sort_uniq String.compare ids)));
    case "find resolves every listed id" (fun () ->
        List.iter
          (fun id -> check_bool id true (Registry.find id <> None))
          (Registry.ids ());
        check_bool "unknown" true (Registry.find "bogus" = None));
    case "the DESIGN.md inventory is covered" (fun () ->
        (* Every table/figure id promised in DESIGN.md must exist. *)
        List.iter
          (fun id -> check_bool ("registry has " ^ id) true (Registry.find id <> None))
          [
            "table1"; "ladder"; "grid"; "tree";
            "g2set-5000-d2.5"; "g2set-5000-d3"; "g2set-5000-d3.5"; "g2set-5000-d4";
            "gnp-5000"; "gbreg-5000-d3"; "gbreg-5000-d4";
            "g2set-2000-d2.5"; "g2set-2000-d3"; "g2set-2000-d3.5"; "g2set-2000-d4";
            "gnp-2000"; "gbreg-2000-d3"; "gbreg-2000-d4";
            "obs1"; "obs2"; "obs4"; "ablate-matching"; "ablate-levels";
          ]);
    case "a small experiment renders a non-empty table" (fun () ->
        (* Run the cheapest special-graph table under the smoke profile. *)
        match Registry.find "ladder" with
        | None -> Alcotest.fail "ladder missing"
        | Some e ->
            let out = e.Registry.run Profile.smoke in
            check_bool "has header" true (Helpers.contains out "bsa");
            check_bool "has rows" true (Helpers.contains out "ladder 2x"));
  ]

(* --- Paper_table protocol (via the public pieces) ------------------------------------- *)

let protocol_tests =
  [
    case "paper_quad runs all four algorithms" (fun () ->
        let g = Classic.grid ~rows:4 ~cols:4 in
        let q = Runner.paper_quad Profile.smoke (Helpers.rng ()) g in
        List.iter
          (fun (name, r) ->
            check_bool (name ^ " balanced") true r.Runner.balanced;
            check_bool (name ^ " cut >= width") true (r.Runner.cut >= 4))
          [ ("sa", q.Runner.bsa); ("csa", q.Runner.bcsa); ("kl", q.Runner.bkl);
            ("ckl", q.Runner.bckl) ]);
    case "experiments are reproducible (seeded)" (fun () ->
        match Registry.find "tree" with
        | None -> Alcotest.fail "tree missing"
        | Some e ->
            (* Cut columns must match across runs; timing columns differ.
               Compare the cut-related prefix of each row. *)
            let strip_times s =
              String.split_on_char '\n' s
              |> List.map (fun line ->
                     match String.index_opt line '.' with
                     | Some i -> String.sub line 0 i
                     | None -> line)
              |> String.concat "\n"
            in
            let a = e.Registry.run Profile.smoke and b = e.Registry.run Profile.smoke in
            Alcotest.(check string) "same cuts" (strip_times a) (strip_times b));
  ]

(* --- Sign test ---------------------------------------------------------------- *)

module Sign_test = Gb_experiments.Sign_test

let sign_test_tests =
  [
    case "of_pairs counts wins, ties dropped, smaller is better" (fun () ->
        let t = Sign_test.of_pairs [ (1, 2); (3, 3); (5, 4); (2, 9); (7, 7) ] in
        check_int "wins_a" 2 t.Sign_test.wins_a;
        check_int "wins_b" 1 t.Sign_test.wins_b;
        check_int "ties" 2 t.Sign_test.ties;
        check_bool "win rate" true
          (Float.abs (t.Sign_test.win_rate_a -. (2. /. 3.)) < 1e-9));
    case "binomial_two_sided is symmetric and exact at the corners" (fun () ->
        let p = Sign_test.binomial_two_sided in
        check_bool "k and n-k agree" true
          (Float.abs (p ~n:10 ~k:2 -. p ~n:10 ~k:8) < 1e-12);
        check_bool "an even split is certain" true
          (Float.abs (p ~n:10 ~k:5 -. 1.0) < 1e-9);
        (* P(all 8 one way, doubled): 2 * 2^-8 *)
        check_bool "extreme tail" true
          (Float.abs (p ~n:8 ~k:8 -. (2. /. 256.)) < 1e-12);
        check_bool "never exceeds 1" true (p ~n:4 ~k:2 <= 1.0));
    case "pp renders the counts and the p-value" (fun () ->
        let t = Sign_test.of_pairs [ (1, 2); (5, 4); (2, 9) ] in
        let s = Format.asprintf "%a" Sign_test.pp t in
        check_bool "mentions wins" true (Helpers.contains s "2");
        check_bool "non-empty" true (String.length s > 10));
    case "paper_table header matches the quad column layout" (fun () ->
        let h = Gb_experiments.Paper_table.header in
        check_bool "has an instance column" true (List.mem "instance" h);
        List.iter
          (fun col -> check_bool col true (List.mem col h))
          [ "bsa"; "bcsa"; "bkl"; "bckl" ]);
  ]

(* --- ASCII charts ------------------------------------------------------------ *)

module Chart = Gb_experiments.Ascii_chart

let chart_tests =
  [
    case "render includes title, extremes and the axis" (fun () ->
        let out = Chart.render ~title:"T" [ 1.0; 5.0; 3.0 ] in
        check_bool "title" true (Helpers.contains out "T\n");
        check_bool "max label" true (Helpers.contains out "5.0");
        check_bool "min label" true (Helpers.contains out "1.0");
        check_bool "axis" true (Helpers.contains out "+---"));
    case "empty series renders a placeholder" (fun () ->
        check_bool "placeholder" true
          (Helpers.contains (Chart.render ~title:"T" []) "(empty series)"));
    case "constant series does not divide by zero" (fun () ->
        let out = Chart.render ~title:"T" [ 2.0; 2.0; 2.0 ] in
        check_bool "renders" true (String.length out > 0));
    case "long series are downsampled to a bounded width" (fun () ->
        let series = List.init 10_000 (fun i -> float_of_int (i mod 100)) in
        let out = Chart.render ~title:"T" series in
        let max_line =
          String.split_on_char '\n' out
          |> List.fold_left (fun acc l -> max acc (String.length l)) 0
        in
        check_bool "bounded" true (max_line < 100));
    case "downsampling keeps spikes (bucket max)" (fun () ->
        let series = List.init 1000 (fun i -> if i = 500 then 99.0 else 1.0) in
        check_bool "spike survives" true (Helpers.contains (Chart.render ~title:"T" series) "99.0"));
    case "sparkline basics" (fun () ->
        check_int "empty" 0 (String.length (Chart.sparkline []));
        let s = Chart.sparkline [ 0.; 1.; 2.; 3. ] in
        check_int "length" 4 (String.length s);
        check_bool "ends high" true (s.[3] = '#'));
    case "custom height respected" (fun () ->
        let out = Chart.render ~title:"T" ~height:4 [ 1.; 2. ] in
        (* title + 4 rows + axis (+ nothing else) *)
        check_int "lines" 6 (List.length (String.split_on_char '\n' (String.trim out))));
  ]

let extension_experiment_tests =
  [
    case "figures experiment renders all three charts" (fun () ->
        match Registry.find "figures" with
        | None -> Alcotest.fail "figures missing"
        | Some e ->
            let out = e.Registry.run Profile.smoke in
            check_bool "kl figure" true (Helpers.contains out "KL cut vs pass");
            check_bool "sa figure" true (Helpers.contains out "SA best cost");
            check_bool "ml figure" true (Helpers.contains out "multilevel"));
    case "netlist experiment renders" (fun () ->
        match Registry.find "netlist" with
        | None -> Alcotest.fail "netlist missing"
        | Some e ->
            let out = e.Registry.run Profile.smoke in
            check_bool "has HFM column" true (Helpers.contains out "HFM"));
    case "geometric experiment renders" (fun () ->
        match Registry.find "geometric" with
        | None -> Alcotest.fail "geometric missing"
        | Some e ->
            let out = e.Registry.run Profile.smoke in
            check_bool "has strip column" true (Helpers.contains out "strip"));
    case "spectral baseline renders" (fun () ->
        match Registry.find "baseline-spectral" with
        | None -> Alcotest.fail "baseline-spectral missing"
        | Some e ->
            let out = e.Registry.run Profile.smoke in
            check_bool "has spectral column" true (Helpers.contains out "spectral"));
  ]

let scale_suite_tests =
  let module S = Gbisect.Scale_suite in
  [
    case "algorithm ids round-trip" (fun () ->
        List.iter
          (fun a ->
            match S.algorithm_of_id (S.algorithm_id a) with
            | Some a' when a' = a -> ()
            | _ -> Alcotest.failf "no round trip for %s" (S.algorithm_id a))
          [ S.Mlkl; S.Mlfm; S.Fm; S.Kl ];
        check_bool "multilevel aliases mlkl" true (S.algorithm_of_id "multilevel" = Some S.Mlkl);
        check_bool "unknown rejected" true (S.algorithm_of_id "nope" = None));
    case "a small run is deterministic apart from timings" (fun () ->
        let run () = S.run ~algorithm:S.Mlfm ~seed:5 (S.Gnp { n = 2000; avg_degree = 4. }) in
        let a = run () and b = run () in
        check_int "n" 2000 a.S.n;
        check_int "same m" a.S.m b.S.m;
        check_int "same cut" a.S.cut b.S.cut;
        check_int "same levels" a.S.levels b.S.levels;
        check_bool "balanced" true a.S.balanced;
        check_bool "several levels" true (a.S.levels > 1));
    case "grid model and flat baselines work" (fun () ->
        let r = S.run ~algorithm:S.Fm ~seed:3 (S.Grid { rows = 30; cols = 40 }) in
        check_int "n" 1200 r.S.n;
        check_int "m" ((30 * 39) + (29 * 40)) r.S.m;
        check_int "flat solver is one level" 1 r.S.levels;
        check_bool "balanced" true r.S.balanced);
    case "refine_passes trades cut for passes deterministically" (fun () ->
        let run p =
          (S.run ~refine_passes:p ~algorithm:S.Mlfm ~seed:5
             (S.Gnp { n = 4000; avg_degree = 4. }))
            .S.cut
        in
        check_int "stable at fixed passes" (run 1) (run 1);
        check_bool "more passes never hurt the fixed seed" true (run 8 <= run 1));
    case "json artifact carries schema, host and rss fields" (fun () ->
        let r = S.run ~algorithm:S.Mlkl ~seed:2 (S.Gnp { n = 1000; avg_degree = 3. }) in
        let s = Gbisect.Obs.Json.to_string (S.to_json r) in
        List.iter
          (fun needle -> check_bool needle true (Helpers.contains s needle))
          [
            "\"schema_version\":"; "\"host\":"; "\"ocaml_version\":"; "\"model\":";
            "\"algorithm\":\"mlkl\""; "\"peak_rss_bytes\":";
          ];
        check_bool "render mentions the cut" true
          (Helpers.contains (S.render r) (string_of_int r.S.cut)));
  ]

let () =
  Alcotest.run "experiments"
    [
      ("profile", profile_tests);
      ("table", table_tests);
      ("runner", runner_tests);
      ("registry", registry_tests);
      ("protocol", protocol_tests);
      ("sign test", sign_test_tests);
      ("charts", chart_tests);
      ("extension experiments", extension_experiment_tests);
      ("scale suite", scale_suite_tests);
    ]
