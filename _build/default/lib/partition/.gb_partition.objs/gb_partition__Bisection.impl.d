lib/partition/bisection.ml: Array Format Gb_graph
