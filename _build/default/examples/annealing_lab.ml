(* "Fine tuning the annealing schedule can be a big job" (paper §VI/VII)
   — this example shows exactly what those knobs do, on one instance.

   We take a sparse planted graph (where schedule quality is visible),
   and sweep: cooling rate, moves-per-temperature, the JAMS cutoff, and
   finally swap the Boltzmann rule for threshold accepting. The output
   shows the quality/time trade-off the paper's authors fought by hand.

   Run with:  dune exec examples/annealing_lab.exe *)

let () =
  let rng = Gbisect.Rng.create ~seed:1989 in
  let params = Gbisect.Bregular.{ two_n = 1000; b = 16; d = 3 } in
  let params =
    { params with Gbisect.Bregular.b = Gbisect.Bregular.nearest_feasible_b params }
  in
  let graph = Gbisect.Bregular.generate rng params in
  Format.printf "instance: %a, planted cut %d@.@." Gbisect.Graph.pp graph
    params.Gbisect.Bregular.b;

  let run name schedule =
    let config = { Gbisect.Sa_bisect.default_config with schedule } in
    let t0 = Sys.time () in
    let best = ref max_int and attempts = ref 0 in
    for seed = 1 to 2 do
      let rng = Gbisect.Rng.create ~seed in
      let b, stats = Gbisect.Sa_bisect.run ~config rng graph in
      best := min !best (Gbisect.Bisection.cut b);
      attempts := !attempts + stats.Gbisect.Sa_bisect.sa.Gbisect.Sa.attempted
    done;
    Format.printf "  %-34s best cut %4d   %9d moves  %.2fs@." name !best !attempts
      (Sys.time () -. t0)
  in

  let base = Gbisect.Schedule.default in
  Format.printf "cooling rate (geometric factor):@.";
  run "cooling 0.80 (quench)" { base with cooling = 0.80 };
  run "cooling 0.95 (default)" base;
  run "cooling 0.98 (patient)" { base with cooling = 0.98 };

  Format.printf "@.equilibrium size (moves per temperature = f * n):@.";
  run "size_factor 2" { base with size_factor = 2 };
  run "size_factor 8 (default)" base;
  run "size_factor 16" { base with size_factor = 16 };

  Format.printf "@.JAMS cutoff (leave hot temperatures early):@.";
  run "cutoff 1.0 (off, default)" base;
  run "cutoff 0.25" { base with cutoff = 0.25 };
  run "cutoff 0.10" { base with cutoff = 0.10 };

  Format.printf "@.acceptance rule:@.";
  run "Boltzmann (simulated annealing)" base;
  let t0 = Sys.time () in
  let best = ref max_int in
  for seed = 1 to 2 do
    let rng = Gbisect.Rng.create ~seed in
    let b, _ = Gbisect.Threshold.run rng graph in
    best := min !best (Gbisect.Bisection.cut b)
  done;
  Format.printf "  %-34s best cut %4d   %9s        %.2fs@."
    "deterministic threshold accepting" !best "-" (Sys.time () -. t0);

  Format.printf
    "@.(KL, for scale: cut %d in %.3fs — the paper's Observation 4.)@."
    (let b, _ = Gbisect.Kl.run rng graph in
     Gbisect.Bisection.cut b)
    (let t0 = Sys.time () in
     ignore (Gbisect.Kl.run rng graph);
     Sys.time () -. t0)
