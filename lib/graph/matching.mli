(** Matchings: sets of vertex-disjoint edges.

    The compaction heuristic (paper §V, step 1) begins by forming "a
    maximum random matching" — in [BCLS87] and here, a random {e maximal}
    matching: scan the edges in random order, greedily keeping every edge
    whose endpoints are both still free. A maximal matching cannot be
    extended, which is what compaction needs (it halves the graph as much
    as a greedy pass can).

    {!heavy_edge} is the weight-aware policy introduced by multilevel
    partitioners (the descendants of this paper); it is provided for the
    ablation benchmark E-X1. *)

type t = {
  mate : int array;  (** [mate.(u)] is [u]'s partner, or [-1] if unmatched. *)
  pairs : (int * int) list;  (** The matched edges, each with [fst < snd]. *)
}

val size : t -> int
(** Number of matched edges. *)

val is_matched : t -> int -> bool

val upper_edges : ?chunks:int -> Csr.t -> int array * int array
(** [(esrc, edst)]: the endpoints of every undirected edge in
    {!Csr.iter_edges} order ([esrc.(k) < edst.(k)]). Filled chunked over
    CSR source ranges on the ambient {!Gb_par.Pool} when the graph is
    large (or when [chunks] forces a decomposition); the arrays are
    byte-identical to the sequential fill at any chunk and job count —
    this is the matching half of the parallel V-cycle kernels, and the
    differential tests compare chunk counts against each other.
    @raise Invalid_argument if [chunks < 1]. *)

val random_maximal : Gb_prng.Rng.t -> Csr.t -> t
(** Uniformly random edge order, greedy maximal matching. The edge
    enumeration runs on the parallel {!upper_edges} kernel; the shuffle
    and the greedy scan are order-defining and stay sequential, so the
    matching is identical at any job count. *)

val heavy_edge : Gb_prng.Rng.t -> Csr.t -> t
(** Visit vertices in random order; match each free vertex to its free
    neighbour of maximum edge weight (ties broken by smallest id). *)

val empty : Csr.t -> t
(** The empty matching (contraction with it is the identity coarsening). *)

val is_valid : Csr.t -> t -> bool
(** Pairs are edges of the graph, vertex-disjoint, and [mate] is the
    involution they induce. *)

val is_maximal : Csr.t -> t -> bool
(** No edge of the graph has both endpoints unmatched. *)
