module Rng = Gb_prng.Rng
module Bregular = Gb_models.Bregular
module Telemetry = Gb_obs.Telemetry

let instance profile =
  let two_n = Profile.scaled profile 2000 in
  let params = Bregular.{ two_n; b = 16; d = 3 } in
  let params = { params with Bregular.b = Bregular.nearest_feasible_b params } in
  let rng =
    Rng.create ~seed:(Rng.seed_of_string (Printf.sprintf "%d/figures" profile.Profile.master_seed))
  in
  (Bregular.generate rng params, params.Bregular.b, rng)

(* One labelled trajectory out of a telemetry record: the cores sample
   "kl.pass" after every KL pass, "sa.plateau" after every temperature
   plateau, "compaction.level" after every refined level. *)
let series label (record : Telemetry.record) =
  List.filter_map
    (fun (k, v) -> if String.equal k label then Some v else None)
    record.Telemetry.trajectory

let record_of profile rng algorithm g =
  let _, record = Runner.run_once_record ~collect:true profile rng algorithm g in
  record

let kl_passes profile =
  let g, b, rng = instance profile in
  let flat = series "kl.pass" (record_of profile rng Runner.Kl g) in
  (* CKL runs KL twice — on the contracted graph, then on the original
     from the projected start — so its "kl.pass" trajectory shows the
     coarse passes followed by the (few) fine ones. *)
  let compacted = series "kl.pass" (record_of profile rng Runner.Ckl g) in
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: KL cut vs pass, Gbreg(%d, %d, 3) — random start (planted cut %d)"
         (Gb_graph.Csr.n_vertices g) b b)
    ~y_label:"cut" ~x_label:"pass" flat
  ^ Ascii_chart.render
      ~title:"          same instance — compacted (CKL), coarse then fine passes"
      ~y_label:"cut" ~x_label:"pass" compacted

let sa_temperatures profile =
  let g, b, rng = instance profile in
  let costs = series "sa.plateau" (record_of profile rng Runner.Sa g) in
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: SA best cost vs temperature index, Gbreg(%d, %d, 3)"
         (Gb_graph.Csr.n_vertices g) b)
    ~y_label:"best cost" ~x_label:"temperature index" costs

let multilevel_levels profile =
  let g, b, rng = instance profile in
  let cuts = series "compaction.level" (record_of profile rng Runner.Multilevel_kl g) in
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: multilevel (recursive compaction) cut per level, Gbreg(%d, %d, 3) — \
          coarsest to finest"
         (Gb_graph.Csr.n_vertices g) b)
    ~y_label:"cut after refinement" ~x_label:"level" cuts

let figures profile =
  kl_passes profile ^ "\n" ^ sa_temperatures profile ^ "\n" ^ multilevel_levels profile
