test/test_kl.mli:
