lib/models/small_world.ml: Gb_graph Gb_prng
