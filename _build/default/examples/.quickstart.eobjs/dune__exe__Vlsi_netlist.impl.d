examples/vlsi_netlist.ml: Array Format Gbisect List
