(* Tests for Gb_obs: the JSON codec, counters/histograms, the trace
   sink, telemetry records, and — the contract that matters most — that
   turning observability on changes neither results nor RNG streams. *)

module Obs = Gbisect.Obs
module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Telemetry = Obs.Telemetry
module Clock = Obs.Clock
module Prof = Obs.Prof
module Pool = Gbisect.Pool
module Classic = Gbisect.Classic
module Kl = Gbisect.Kl
module Rng = Gbisect.Rng
module Runner = Gbisect.Runner
module Profile = Gbisect.Profile

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* Leave the global observability state exactly as we found it. *)
let pristine f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ();
      Prof.set_enabled false;
      Prof.reset ();
      Trace.set Trace.noop;
      Telemetry.set_writer None)
    f

(* --- JSON ------------------------------------------------------------------ *)

let json_tests =
  [
    case "to_string / of_string round-trip" (fun () ->
        let v =
          Json.Obj
            [
              ("name", Json.String "kl.pass");
              ("n", Json.Int (-3));
              ("x", Json.Float 1.5);
              ("ok", Json.Bool true);
              ("none", Json.Null);
              ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
            ]
        in
        check_bool "round-trip" true (Json.of_string (Json.to_string v) = v));
    case "escapes and parses tricky strings" (fun () ->
        let s = "a\"b\\c\nd\te\x01f" in
        match Json.of_string (Json.to_string (Json.String s)) with
        | Json.String s' -> Alcotest.(check string) "string" s s'
        | _ -> Alcotest.fail "not a string");
    case "member and to_float" (fun () ->
        let v = Json.of_string {|{"a": 2.5, "b": {"c": 7}}|} in
        check_bool "a" true (Option.bind (Json.member "a" v) Json.to_float = Some 2.5);
        check_bool "missing" true (Json.member "zzz" v = None));
    case "rejects trailing garbage" (fun () ->
        match Json.of_string "{} trailing" with
        | exception _ -> ()
        | _ -> Alcotest.fail "accepted trailing garbage");
    case "strict to_string rejects non-finite floats" (fun () ->
        List.iter
          (fun x ->
            match Json.to_string ~strict:true (Json.Obj [ ("x", Json.Float x) ]) with
            | exception Invalid_argument _ -> ()
            | s -> Alcotest.failf "strict rendered %f as %s" x s)
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    case "non-strict to_string renders non-finite floats as null" (fun () ->
        Alcotest.(check string) "nan" "[null]" (Json.to_string (Json.List [ Json.Float Float.nan ]));
        Alcotest.(check string) "finite untouched" "[1.5]"
          (Json.to_string (Json.List [ Json.Float 1.5 ])));
  ]

(* --- Metrics --------------------------------------------------------------- *)

let metrics_tests =
  [
    case "counters are off by default and exact when on" (fun () ->
        pristine (fun () ->
            let c = Metrics.counter "test.counter" in
            Metrics.incr c;
            check_int "disabled incr ignored" 0 (Metrics.value c);
            Metrics.set_enabled true;
            Metrics.incr c;
            Metrics.add c 4;
            check_int "counts" 5 (Metrics.value c);
            Metrics.reset ();
            check_int "reset" 0 (Metrics.value c)));
    case "KL counters agree with KL stats on ladder 4" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            Metrics.reset ();
            let g = Classic.ladder 4 in
            let rng = Rng.create ~seed:7 in
            let bisection, stats = Kl.run rng g in
            let v name = Metrics.value (Metrics.counter name) in
            check_int "passes" stats.Kl.passes (v "kl.passes");
            check_int "swaps" stats.Kl.swaps (v "kl.swaps_committed");
            check_bool "pairs scanned" true (v "kl.pairs_scanned" > 0);
            check_bool "bucket updates" true (v "kl.gain_bucket_updates" > 0);
            check_bool "balanced" true (Gbisect.Bisection.is_balanced bisection);
            (* the run's final cut must match the bisection's *)
            check_int "final cut" stats.Kl.final_cut (Gbisect.Bisection.cut bisection)));
    case "histogram snapshot sums observations" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            let h = Metrics.histogram "test.histogram" in
            List.iter (fun x -> Metrics.observe h x) [ 1.0; 2.0; 4.0 ];
            match List.assoc_opt "test.histogram" (Metrics.histograms ()) with
            | None -> Alcotest.fail "histogram missing"
            | Some s ->
                check_int "count" 3 s.Metrics.count;
                Alcotest.(check (float 1e-9)) "sum" 7.0 s.Metrics.sum));
    case "counters and histograms are exact under two-domain contention" (fun () ->
        (* Regression: counters were plain refs, so concurrent fan-outs
           lost increments. Two domains hammering the same counter and
           histogram must land every single update. *)
        pristine (fun () ->
            Metrics.set_enabled true;
            Metrics.reset ();
            let c = Metrics.counter "test.hammer" in
            let h = Metrics.histogram "test.hammer_h" in
            let n = 50_000 in
            let work () =
              for _ = 1 to n do
                Metrics.incr c;
                Metrics.observe h 1.0
              done
            in
            let other = Domain.spawn work in
            work ();
            Domain.join other;
            check_int "exact count" (2 * n) (Metrics.value c);
            match List.assoc_opt "test.hammer_h" (Metrics.histograms ()) with
            | None -> Alcotest.fail "histogram missing"
            | Some s ->
                check_int "histogram count" (2 * n) s.Metrics.count;
                Alcotest.(check (float 1e-6)) "histogram sum"
                  (float_of_int (2 * n))
                  s.Metrics.sum));
    case "ambient installs are race-free under two-domain contention" (fun () ->
        (* Companion to the mutable-global audit: every ambient
           installation point (clock source, trace sink, telemetry
           writer, --jobs) is an Atomic. One domain re-installs them in
           a tight loop while the other reads and emits through them;
           nothing may tear, crash, or deliver to a half-installed
           writer, and the last install must win. *)
        pristine (fun () ->
            let jobs0 = Pool.jobs () in
            Fun.protect
              ~finally:(fun () ->
                Pool.set_jobs jobs0;
                (* lint: allow no-wall-clock, par-wall-clock — restores the default clock source after the hammer *)
                Clock.set Sys.time)
              (fun () ->
                let n = 5_000 in
                let record =
                  {
                    Telemetry.algorithm = "hammer";
                    graph = "hammer";
                    profile = "test";
                    seed = None;
                    start = 0;
                    cut = 0;
                    seconds = 0.;
                    balanced = true;
                    trajectory = [];
                    metrics = [];
                  }
                in
                let installer () =
                  for i = 1 to n do
                    Clock.set (fun () -> float_of_int i);
                    Pool.set_jobs ((i mod 4) + 1);
                    Telemetry.set_writer (Some ignore);
                    Trace.set (Trace.of_writer ignore)
                  done
                in
                let healthy = Atomic.make true in
                let reader () =
                  for _ = 1 to n do
                    let t = Clock.now () in
                    if not (Float.is_finite t && t >= 0.) then Atomic.set healthy false;
                    if Pool.jobs () < 1 then Atomic.set healthy false;
                    Telemetry.emit record;
                    Trace.with_span "hammer" (fun () -> Trace.instant "tick")
                  done
                in
                let other = Domain.spawn installer in
                reader ();
                Domain.join other;
                check_bool "reads stayed sane" true (Atomic.get healthy);
                check_bool "last jobs install wins" true
                  (let j = Pool.jobs () in j >= 1 && j <= 4);
                Alcotest.(check (float 0.)) "last clock install wins"
                  (float_of_int n) (Clock.now ());
                let seen = Atomic.make 0 in
                Telemetry.set_writer (Some (fun _ -> Atomic.incr seen));
                Telemetry.emit record;
                check_int "final writer receives exactly one record" 1
                  (Atomic.get seen))));
    case "snapshot_json parses back" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            Metrics.incr (Metrics.counter "test.one");
            let v = Json.of_string (Json.to_string (Metrics.snapshot_json ())) in
            check_bool "has counters" true (Json.member "counters" v <> None);
            check_bool "has histograms" true (Json.member "histograms" v <> None)));
    case "dumps list instruments sorted by name, not registration order" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            (* Register deliberately out of order. *)
            List.iter
              (fun name -> Metrics.incr (Metrics.counter name))
              [ "test.zz"; "test.aa"; "test.mm" ];
            List.iter
              (fun name -> Metrics.observe (Metrics.histogram name) 1.0)
              [ "test.h_z"; "test.h_a" ];
            let sorted names = List.sort String.compare names = names in
            check_bool "counters sorted" true
              (sorted (List.map fst (Metrics.counters ())));
            check_bool "histograms sorted" true
              (sorted (List.map fst (Metrics.histograms ())));
            (match Json.of_string (Json.to_string (Metrics.snapshot_json ())) with
            | Json.Obj kvs ->
                List.iter
                  (fun section ->
                    match List.assoc_opt section kvs with
                    | Some (Json.Obj entries) ->
                        check_bool (section ^ " json sorted") true
                          (sorted (List.map fst entries))
                    | _ -> Alcotest.failf "%s missing from snapshot" section)
                  [ "counters"; "histograms" ]
            | _ -> Alcotest.fail "snapshot_json is not an object")));
    case "log2 bucket boundaries: powers of two, zero, huge" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            (* An observation v lands in the first bucket with
               v < upper_bound: 0 and everything below 1 in the bucket
               capped at 1.0, 2^k exactly in the bucket capped at
               2^(k+1), and a value beyond the last finite bound in the
               +inf overflow bucket. *)
            let bucket_of v =
              let h = Metrics.histogram "test.buckets" in
              Metrics.observe h v;
              let s =
                match List.assoc_opt "test.buckets" (Metrics.histograms ()) with
                | Some s -> s
                | None -> Alcotest.fail "histogram missing"
              in
              Metrics.reset ();
              match s.Metrics.buckets with
              | [ (ub, 1) ] -> ub
              | _ -> Alcotest.failf "expected one occupied bucket for %g" v
            in
            Alcotest.(check (float 0.)) "0 -> le 1" 1.0 (bucket_of 0.0);
            Alcotest.(check (float 0.)) "0.25 -> le 1" 1.0 (bucket_of 0.25);
            for k = 0 to 12 do
              Alcotest.(check (float 0.))
                (Printf.sprintf "2^%d -> le 2^%d" k (k + 1))
                (Float.ldexp 1.0 (k + 1))
                (bucket_of (Float.ldexp 1.0 k));
              (* Just under 2^k stays one bucket lower (for k >= 1). *)
              if k >= 1 then
                Alcotest.(check (float 0.))
                  (Printf.sprintf "under 2^%d -> le 2^%d" k k)
                  (Float.ldexp 1.0 k)
                  (bucket_of (Float.pred (Float.ldexp 1.0 k)))
            done;
            Alcotest.(check (float 0.)) "max_int overflows to +inf" Float.infinity
              (bucket_of (float_of_int max_int));
            check_bool "negative observations land in the first bucket" true
              (bucket_of (-3.0) = 1.0)));
    case "summary stats are exact on the boundary corpus" (fun () ->
        pristine (fun () ->
            Metrics.set_enabled true;
            let h = Metrics.histogram "test.stats" in
            let corpus = [ 0.0; 1.0; 2.0; 1024.0; float_of_int max_int ] in
            List.iter (Metrics.observe h) corpus;
            match List.assoc_opt "test.stats" (Metrics.histograms ()) with
            | None -> Alcotest.fail "histogram missing"
            | Some s ->
                check_int "count" (List.length corpus) s.Metrics.count;
                Alcotest.(check (float 0.)) "sum"
                  (List.fold_left ( +. ) 0. corpus)
                  s.Metrics.sum;
                Alcotest.(check (float 0.)) "min" 0.0 s.Metrics.min_value;
                Alcotest.(check (float 0.)) "max" (float_of_int max_int)
                  s.Metrics.max_value;
                check_int "every observation is in a bucket"
                  (List.length corpus)
                  (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Metrics.buckets)));
  ]

(* --- Prof ------------------------------------------------------------------ *)

let prof_tests =
  [
    case "disabled spans are inert" (fun () ->
        pristine (fun () ->
            check_bool "off by default" false (Prof.enabled ());
            let hit = ref false in
            Prof.with_span "test.span" (fun () -> hit := true);
            check_bool "thunk ran" true !hit;
            check_bool "finish is None" true (Prof.finish (Prof.start "test.span") = None);
            check_int "registry untouched" 0 (List.length (Prof.snapshot ()))));
    case "enabled spans accumulate counts and allocation" (fun () ->
        pristine (fun () ->
            Prof.set_enabled true;
            for _ = 1 to 3 do
              Prof.with_span "test.alloc" (fun () ->
                  ignore (Sys.opaque_identity (Array.make 10_000 0.)))
            done;
            match List.assoc_opt "test.alloc" (Prof.snapshot ()) with
            | None -> Alcotest.fail "span missing from snapshot"
            | Some s ->
                check_int "count" 3 s.Prof.count;
                check_bool "allocation observed" true
                  (Prof.allocated_words s.Prof.total > 3. *. 10_000.);
                check_bool "seconds non-negative" true (s.Prof.total.Prof.seconds >= 0.)));
    case "snapshot is sorted and reset clears it" (fun () ->
        pristine (fun () ->
            Prof.set_enabled true;
            List.iter
              (fun name -> Prof.with_span name (fun () -> ()))
              [ "test.z"; "test.a"; "test.m" ];
            let names = List.map fst (Prof.snapshot ()) in
            check_bool "sorted" true (List.sort String.compare names = names);
            Prof.reset ();
            check_int "reset" 0 (List.length (Prof.snapshot ()))));
    case "snapshot_json and openmetrics render the registry" (fun () ->
        pristine (fun () ->
            Prof.set_enabled true;
            Prof.with_span "test.render" (fun () ->
                ignore (Sys.opaque_identity (List.init 100 Fun.id)));
            let v = Json.of_string (Json.to_string (Prof.snapshot_json ())) in
            (match Option.bind (Json.member "spans" v) (Json.member "test.render") with
            | Some span ->
                check_bool "count" true (Json.member "count" span = Some (Json.Int 1));
                check_bool "alloc field" true
                  (Json.member "alloc_words" span <> None)
            | None -> Alcotest.fail "span missing from snapshot_json");
            check_bool "peak_rss key" true (Json.member "peak_rss_bytes" v <> None);
            let om = Prof.render_openmetrics () in
            let has needle haystack =
              let nl = String.length needle and hl = String.length haystack in
              let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
              go 0
            in
            check_bool "spans_total family" true
              (has "gbisect_prof_spans_total{span=\"test.render\"} 1" om);
            check_bool "alloc family" true (has "gbisect_prof_alloc_words_total" om);
            check_bool "terminated" true (has "# EOF" om)));
    case "peak rss is readable on linux" (fun () ->
        match Prof.peak_rss_bytes () with
        | Some b -> check_bool "positive" true (b > 0)
        | None -> () (* not linux: procfs absent is a legal answer *));
    case "prof on vs off: identical cut and RNG stream" (fun () ->
        let run () =
          let g = Classic.ladder 32 in
          let rng = Rng.create ~seed:11 in
          let b, _ = Kl.run rng g in
          (Gbisect.Bisection.cut b, Rng.int rng 1_000_000)
        in
        let off = run () in
        let on =
          pristine (fun () ->
              Prof.set_enabled true;
              run ())
        in
        check_bool "bit-identical" true (off = on));
    case "runner attaches a prof delta to records and spans when enabled" (fun () ->
        pristine (fun () ->
            Prof.set_enabled true;
            let records = ref [] in
            Telemetry.set_writer (Some (fun r -> records := r :: !records));
            let g = Classic.ladder 16 in
            let rng = Rng.create ~seed:1 in
            ignore (Runner.best_of_starts Profile.smoke rng Runner.Kl g);
            check_bool "records emitted" true (!records <> []);
            List.iter
              (fun r ->
                match List.assoc_opt "prof" r.Telemetry.metrics with
                | Some (Json.Obj fields) ->
                    List.iter
                      (fun key ->
                        check_bool (key ^ " present") true
                          (List.mem_assoc key fields))
                      [ "seconds"; "alloc_words"; "minor_collections" ]
                | _ -> Alcotest.fail "record carries no prof sub-object")
              !records;
            (* runner.trial itself is a registered span *)
            check_bool "runner.trial span" true
              (List.mem_assoc "runner.trial" (Prof.snapshot ()))));
    case "runner records carry no prof object when disabled" (fun () ->
        pristine (fun () ->
            let records = ref [] in
            Telemetry.set_writer (Some (fun r -> records := r :: !records));
            let g = Classic.ladder 16 in
            let rng = Rng.create ~seed:1 in
            ignore (Runner.best_of_starts Profile.smoke rng Runner.Kl g);
            check_bool "records emitted" true (!records <> []);
            List.iter
              (fun r ->
                check_bool "no prof key" false
                  (List.mem_assoc "prof" r.Telemetry.metrics))
              !records));
  ]

(* --- Trace ----------------------------------------------------------------- *)

let trace_lines f =
  let buf = Buffer.create 256 in
  pristine (fun () ->
      Trace.set (Trace.of_writer (Buffer.add_string buf));
      f ();
      Trace.set Trace.noop);
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> String.trim l <> "")

let trace_tests =
  [
    case "spans emit valid trace_event JSON lines" (fun () ->
        let lines =
          trace_lines (fun () ->
              Trace.with_span "outer"
                ~args:[ ("k", Json.Int 1) ]
                (fun () -> Trace.instant "tick"))
        in
        check_int "two events" 2 (List.length lines);
        List.iter
          (fun line ->
            let v = Json.of_string line in
            List.iter
              (fun key -> check_bool (key ^ " present") true (Json.member key v <> None))
              [ "name"; "ph"; "ts"; "pid"; "tid" ])
          lines;
        (* the span line is a complete event with a duration *)
        let span =
          List.find
            (fun l -> Json.member "name" (Json.of_string l) = Some (Json.String "outer"))
            lines
        in
        check_bool "ph X" true (Json.member "ph" (Json.of_string span) = Some (Json.String "X"));
        check_bool "dur" true (Json.member "dur" (Json.of_string span) <> None));
    case "kl refine emits kl.pass spans" (fun () ->
        let lines =
          trace_lines (fun () ->
              let g = Classic.ladder 16 in
              let rng = Rng.create ~seed:3 in
              ignore (Kl.run rng g))
        in
        let names =
          List.filter_map (fun l -> Json.member "name" (Json.of_string l)) lines
        in
        check_bool "has kl.pass span" true (List.mem (Json.String "kl.pass") names));
    case "noop sink writes nothing and is not enabled" (fun () ->
        pristine (fun () ->
            Trace.set Trace.noop;
            check_bool "disabled" false (Trace.enabled ());
            (* must be harmless without a sink *)
            Trace.with_span "ignored" (fun () -> ())));
  ]

(* --- Determinism: observability must never change results ------------------ *)

let determinism_tests =
  [
    case "obs on vs off: identical cut and RNG stream" (fun () ->
        let run () =
          let g = Classic.ladder 32 in
          let rng = Rng.create ~seed:11 in
          let b, _ = Kl.run rng g in
          (* drawing after the run exposes any extra RNG consumption *)
          (Gbisect.Bisection.cut b, Rng.int rng 1_000_000)
        in
        let off = run () in
        let on =
          pristine (fun () ->
              Metrics.set_enabled true;
              Trace.set (Trace.of_writer (fun _ -> ()));
              let result, _samples = Telemetry.with_collector run in
              result)
        in
        check_bool "bit-identical" true (off = on));
    case "sa obs on vs off: identical result" (fun () ->
        let run () =
          let g = Classic.ladder 8 in
          let rng = Rng.create ~seed:5 in
          let b, _ = Gbisect.Sa_bisect.run rng g in
          (Gbisect.Bisection.cut b, Rng.int rng 1_000_000)
        in
        let off = run () in
        let on =
          pristine (fun () ->
              Metrics.set_enabled true;
              fst (Telemetry.with_collector run))
        in
        check_bool "bit-identical" true (off = on));
  ]

(* --- Telemetry ------------------------------------------------------------- *)

let telemetry_tests =
  [
    case "record to_json carries all fields" (fun () ->
        let r =
          {
            Telemetry.algorithm = "KL";
            graph = "ladder-4";
            profile = "smoke";
            seed = Some 42;
            start = 1;
            cut = 2;
            seconds = 0.5;
            balanced = true;
            trajectory = [ ("kl.pass", 10.); ("kl.pass", 2.) ];
            metrics = [ ("passes", Json.Int 2) ];
          }
        in
        let v = Json.of_string (Json.to_string (Telemetry.to_json r)) in
        check_bool "algorithm" true
          (Json.member "algorithm" v = Some (Json.String "KL"));
        check_bool "seed" true (Json.member "seed" v = Some (Json.Int 42));
        match Json.member "trajectory" v with
        | Some (Json.List [ _; _ ]) -> ()
        | _ -> Alcotest.fail "trajectory shape");
    case "of_json inverts to_json" (fun () ->
        let r =
          {
            Telemetry.algorithm = "CKL";
            graph = "gbreg/b=8/rep1";
            profile = "quick";
            seed = Some 7;
            start = 0;
            cut = 11;
            seconds = 1.25;
            balanced = false;
            trajectory = [ ("kl.pass", 20.); ("compaction.level", 3.) ];
            metrics = [ ("passes", Json.Int 4); ("plateau", Json.Bool false) ];
          }
        in
        check_bool "round trip" true (Telemetry.of_json (Telemetry.to_json r) = Some r);
        (* survives a serialise/parse cycle too (what the store does) *)
        check_bool "via string" true
          (Telemetry.of_json (Json.of_string (Json.to_string (Telemetry.to_json r)))
          = Some r);
        let no_seed = { r with Telemetry.seed = None } in
        check_bool "no seed" true
          (Telemetry.of_json (Telemetry.to_json no_seed) = Some no_seed));
    case "of_json is None on shape mismatches" (fun () ->
        List.iter
          (fun s ->
            check_bool s true (Telemetry.of_json (Json.of_string s) = None))
          [
            "{}";
            "[1,2]";
            {|{"algorithm": 3}|};
            {|{"algorithm":"KL","graph":"g","profile":"p","start":0,"cut":"x","seconds":0,"balanced":true,"trajectory":[],"metrics":{}}|};
          ]);
    case "with_tap sees every emit, writer or not" (fun () ->
        pristine (fun () ->
            let r =
              {
                Telemetry.algorithm = "KL";
                graph = "g";
                profile = "smoke";
                seed = None;
                start = 0;
                cut = 1;
                seconds = 0.;
                balanced = true;
                trajectory = [];
                metrics = [];
              }
            in
            let tapped = ref [] and written = ref [] in
            (* no writer installed: the tap alone receives the record *)
            Telemetry.with_tap
              (fun r -> tapped := r :: !tapped)
              (fun () -> Telemetry.emit r);
            check_int "tap only" 1 (List.length !tapped);
            (* writer and tap both see it *)
            Telemetry.set_writer (Some (fun r -> written := r :: !written));
            Telemetry.with_tap
              (fun r -> tapped := r :: !tapped)
              (fun () -> Telemetry.emit { r with Telemetry.cut = 2 });
            check_int "tap again" 2 (List.length !tapped);
            check_int "writer too" 1 (List.length !written);
            (* tap is scoped: an emit outside reaches only the writer *)
            Telemetry.emit { r with Telemetry.cut = 3 };
            check_int "tap restored" 2 (List.length !tapped);
            check_int "writer still on" 2 (List.length !written)));
    case "with_context scopes and inherits labels" (fun () ->
        Telemetry.with_context ~graph:"g1" ~seed:9 (fun () ->
            check_bool "graph" true (Telemetry.context_graph () = Some "g1");
            Telemetry.with_context ~profile:"p" (fun () ->
                check_bool "inherited seed" true (Telemetry.context_seed () = Some 9);
                check_bool "profile" true (Telemetry.context_profile () = Some "p")));
        check_bool "restored" true (Telemetry.context_graph () = None));
    case "runner emits one record per start with a trajectory" (fun () ->
        pristine (fun () ->
            let records = ref [] in
            Telemetry.set_writer (Some (fun r -> records := r :: !records));
            let profile = Profile.smoke in
            let g = Classic.ladder 16 in
            let rng = Rng.create ~seed:1 in
            let run =
              Telemetry.with_context ~graph:"ladder-16" (fun () ->
                  Runner.best_of_starts profile rng Runner.Kl g)
            in
            let records = List.rev !records in
            check_int "one per start" (max 1 profile.Profile.starts)
              (List.length records);
            check_bool "balanced" true run.Runner.balanced;
            List.iteri
              (fun i r ->
                check_int "start index" i r.Telemetry.start;
                Alcotest.(check string) "graph label" "ladder-16" r.Telemetry.graph;
                check_bool "has kl.pass samples" true
                  (List.exists (fun (k, _) -> k = "kl.pass") r.Telemetry.trajectory))
              records;
            (* the best-of-starts cut is one of the per-start cuts *)
            check_bool "best cut among records" true
              (List.exists (fun r -> r.Telemetry.cut = run.Runner.cut) records)));
  ]

let () =
  Alcotest.run "obs"
    [
      ("json", json_tests);
      ("metrics", metrics_tests);
      ("prof", prof_tests);
      ("trace", trace_tests);
      ("determinism", determinism_tests);
      ("telemetry", telemetry_tests);
    ]
