type record = {
  algorithm : string;
  graph : string;
  profile : string;
  seed : int option;
  start : int;
  cut : int;
  seconds : float;
  balanced : bool;
  trajectory : (string * float) list;
  metrics : (string * Json.t) list;
}

let to_json r =
  Json.Obj
    [
      ("algorithm", Json.String r.algorithm);
      ("graph", Json.String r.graph);
      ("profile", Json.String r.profile);
      ("seed", match r.seed with Some s -> Json.Int s | None -> Json.Null);
      ("start", Json.Int r.start);
      ("cut", Json.Int r.cut);
      ("seconds", Json.Float r.seconds);
      ("balanced", Json.Bool r.balanced);
      ( "trajectory",
        Json.List
          (List.map
             (fun (k, v) -> Json.Obj [ ("k", Json.String k); ("v", Json.Float v) ])
             r.trajectory) );
      ("metrics", Json.Obj r.metrics);
    ]

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)

let collector : (string * float) list ref option ref = ref None

let sample label v =
  match !collector with None -> () | Some points -> points := (label, v) :: !points

let collecting () = !collector <> None

let with_collector f =
  let previous = !collector in
  let points = ref [] in
  collector := Some points;
  let result =
    Fun.protect ~finally:(fun () -> collector := previous) f
  in
  (result, List.rev !points)

(* ------------------------------------------------------------------ *)
(* Context                                                             *)

type context = { profile : string option; graph : string option; seed : int option }

let context = ref { profile = None; graph = None; seed = None }

let with_context ?profile ?graph ?seed f =
  let previous = !context in
  let pick fresh inherited = match fresh with Some _ -> fresh | None -> inherited in
  context :=
    {
      profile = pick profile previous.profile;
      graph = pick graph previous.graph;
      seed = pick seed previous.seed;
    };
  Fun.protect ~finally:(fun () -> context := previous) f

let context_profile () = !context.profile
let context_graph () = !context.graph
let context_seed () = !context.seed

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let writer : (record -> unit) option ref = ref None
let set_writer w = writer := w
let writer_installed () = !writer <> None
let emit r = match !writer with None -> () | Some w -> w r

let to_channel oc r =
  output_string oc (Json.to_string (to_json r));
  output_char oc '\n';
  flush oc
