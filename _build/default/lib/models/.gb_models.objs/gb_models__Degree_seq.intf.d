lib/models/degree_seq.mli: Gb_graph Gb_prng
