lib/hyper/placement.mli: Gb_prng Hgraph
