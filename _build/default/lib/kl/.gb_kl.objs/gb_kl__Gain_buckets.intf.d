lib/kl/gain_buckets.mli:
