(* The gbisect serve daemon. One domain runs the whole accept/parse/
   schedule/respond loop; solve jobs execute inline between polls (the
   best-of-starts fan-out inside a job uses the ambient Gb_par.Pool).
   SERVING.md documents the observable behavior normatively. *)

module Rng = Gb_prng.Rng
module Gio = Gb_graph.Gio
module Csr = Gb_graph.Csr
module Bisection = Gb_partition.Bisection
module Kl = Gb_kl.Kl
module Fm = Gb_kl.Fm
module Sa_bisect = Gb_anneal.Sa_bisect
module Compaction = Gb_compaction.Compaction
module Pool = Gb_par.Pool
module Store = Gb_store.Store
module Metrics = Gb_obs.Metrics
module Trace = Gb_obs.Trace
module Clock = Gb_obs.Clock
module Json = Gb_obs.Json

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let parse_addr s =
  let prefixed p =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match prefixed "unix:" with
  | Some "" -> Error "unix: address needs a socket path"
  | Some path -> Ok (Unix_path path)
  | None -> (
      match prefixed "tcp:" with
      | Some rest -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
          | Some i -> (
              let host = String.sub rest 0 i in
              let port = String.sub rest (i + 1) (String.length rest - i - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 ->
                  Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
              | _ -> Error (Printf.sprintf "invalid tcp port %S" port)))
      | None ->
          if s = "" then Error "empty address" else Ok (Unix_path s))

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)

type config = {
  queue_capacity : int;
  max_frame : int;
  starts_cap : int;
  store : Store.t option;
  log : string -> unit;
}

let default_config =
  {
    queue_capacity = 64;
    max_frame = 8 * 1024 * 1024;
    starts_cap = 512;
    store = None;
    log = ignore;
  }

type t = {
  config : config;
  started : float;
  mutable requests : int;
  mutable solved : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable queue_depth : int;
  mutable is_stopping : bool;
}

let create config =
  {
    config =
      {
        config with
        queue_capacity = max 1 config.queue_capacity;
        max_frame = max 64 config.max_frame;
        starts_cap = max 1 config.starts_cap;
      };
    started = Clock.now ();
    requests = 0;
    solved = 0;
    errors = 0;
    overloaded = 0;
    cache_hits = 0;
    cache_misses = 0;
    queue_depth = 0;
    is_stopping = false;
  }

let stopping t = t.is_stopping

let stats t : Protocol.stats =
  {
    uptime_seconds = Clock.now () -. t.started;
    requests = t.requests;
    solved = t.solved;
    errors = t.errors;
    overloaded = t.overloaded;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    queue_depth = t.queue_depth;
    queue_capacity = t.config.queue_capacity;
  }

(* Metrics are interned once; recording is gated on the global switch
   like every other instrument in the repo. *)
let m_requests = Metrics.counter "serve.requests"
let m_solved = Metrics.counter "serve.solved"
let m_errors = Metrics.counter "serve.errors"
let m_overloaded = Metrics.counter "serve.overloaded"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_cache_misses = Metrics.counter "serve.cache_misses"
let h_latency = Metrics.histogram "serve.latency_us"
let h_queue = Metrics.histogram "serve.queue_depth"

let count_failure t code =
  t.errors <- t.errors + 1;
  Metrics.incr m_errors;
  match (code : Protocol.error_code) with
  | Overloaded ->
      t.overloaded <- t.overloaded + 1;
      Metrics.incr m_overloaded
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The solve engine                                                    *)

let run_once algorithm rng g =
  match (algorithm : Protocol.algorithm) with
  | `Kl -> fst (Kl.run rng g)
  | `Sa -> fst (Sa_bisect.run rng g)
  | `Ckl -> fst (Compaction.ckl rng g)
  | `Csa -> fst (Compaction.csa rng g)
  | `Fm -> fst (Fm.run rng g)
  | `Multilevel -> fst (Compaction.recursive ~refiner:(Compaction.kl_refiner ()) rng g)
  | `Mlfm -> fst (Compaction.recursive ~refiner:(Compaction.fm_refiner ()) rng g)
  | `Xsa -> fst (Gb_race.Xsa.run rng g)

(* Mirrors [Gbisect.solve] exactly — same derive/substream discipline,
   same lowest-index tie-break — so a served job returns bit-identical
   cuts and sides to a local `gbisect solve` of the same (graph,
   algorithm, starts, seed) at any --jobs value. test_serve locks the
   two implementations together. *)
let best_bisection ~algorithm ~starts ~seed g =
  let rng = Rng.create ~seed in
  let base = Rng.derive_seed rng in
  Pool.best_by (Pool.current ())
    ~compare:(fun a b -> Int.compare (Bisection.cut a) (Bisection.cut b))
    (fun i -> run_once algorithm (Rng.substream ~base i) g)
    starts

let cache_key (s : Protocol.solve) canonical =
  Store.key
    [
      ("kind", "serve.solve/v1");
      ("graph", Digest.to_hex (Digest.string canonical));
      ("algorithm", Protocol.algorithm_id s.algorithm);
      ("starts", string_of_int s.starts);
      ("seed", string_of_int s.seed);
    ]

let solve_reply t (s : Protocol.solve) : Protocol.reply =
  let fail code msg =
    count_failure t code;
    Protocol.Failed (code, msg)
  in
  if s.starts > t.config.starts_cap then
    fail Bad_request
      (Printf.sprintf "solve: \"starts\" %d exceeds this server's cap of %d" s.starts
         t.config.starts_cap)
  else
    match
      match s.format with
      | Protocol.Edge_list -> Gio.of_edge_list_string s.data
      | Protocol.Metis -> Gio.of_metis_string s.data
    with
    | exception Failure msg -> fail Bad_request ("solve: graph: " ^ msg)
    | g when Csr.n_vertices g < 2 ->
        fail Bad_request "solve: graph must have at least 2 vertices"
    | g -> (
        let canonical = Gio.to_edge_list_string g in
        let key = cache_key s canonical in
        let cached_solved =
          match t.config.store with
          | None -> None
          | Some store -> (
              match Store.find store key with
              | None -> None
              | Some v -> (
                  match Protocol.solved_of_json v with
                  | Ok solved -> Some solved
                  | Error _ -> None (* stale payload shape: recompute *)))
        in
        match cached_solved with
        | Some solved ->
            t.cache_hits <- t.cache_hits + 1;
            Metrics.incr m_cache_hits;
            t.solved <- t.solved + 1;
            Metrics.incr m_solved;
            Trace.instant "serve.cache_hit";
            Protocol.Solved { solved with cached = true }
        | None -> (
            let span = Trace.start () in
            let t0 = Clock.now () in
            match best_bisection ~algorithm:s.algorithm ~starts:s.starts ~seed:s.seed g with
            | exception (Failure msg | Invalid_argument msg) ->
                Trace.finish span "serve.solve";
                fail Bad_request ("solve: " ^ msg)
            | exception e ->
                Trace.finish span "serve.solve";
                fail Internal (Printexc.to_string e)
            | b ->
                let seconds = Clock.now () -. t0 in
                let n0, n1 = Bisection.counts b in
                let solved : Protocol.solved =
                  {
                    algorithm = s.algorithm;
                    cut = Bisection.cut b;
                    n0;
                    n1;
                    side = Bisection.sides b;
                    balanced = Bisection.is_balanced b;
                    seconds;
                    cached = false;
                  }
                in
                Trace.finish
                  ~args:[ ("cut", Json.Int solved.cut); ("n", Json.Int (n0 + n1)) ]
                  span "serve.solve";
                t.cache_misses <- t.cache_misses + 1;
                Metrics.incr m_cache_misses;
                t.solved <- t.solved + 1;
                Metrics.incr m_solved;
                (match t.config.store with
                | None -> ()
                | Some store -> Store.add store key (Protocol.solved_to_json solved));
                Protocol.Solved solved))

let handle t (req : Protocol.request) : Protocol.response =
  t.requests <- t.requests + 1;
  Metrics.incr m_requests;
  match req with
  | Protocol.Ping id -> { rid = id; reply = Protocol.Pong }
  | Protocol.Stats id -> { rid = id; reply = Protocol.Stats_reply (stats t) }
  | Protocol.Shutdown id ->
      t.is_stopping <- true;
      { rid = id; reply = Protocol.Stopping }
  | Protocol.Solve s ->
      if t.is_stopping then begin
        count_failure t Shutting_down;
        { rid = s.id; reply = Protocol.Failed (Shutting_down, "server is draining") }
      end
      else { rid = s.id; reply = solve_reply t s }

(* ------------------------------------------------------------------ *)
(* Sockets                                                             *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let bind_listener = function
  | Unix_path path ->
      (if Sys.file_exists path then
         match (Unix.stat path).Unix.st_kind with
         | Unix.S_SOCK ->
             (* Live server, or a stale file from a killed one? Probe. *)
             let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
             let live =
               match Unix.connect probe (Unix.ADDR_UNIX path) with
               | () -> true
               | exception Unix.Unix_error _ -> false
             in
             close_quietly probe;
             if live then
               failwith
                 (Printf.sprintf "address in use: a server is listening on unix:%s" path)
             else Sys.remove path
         | _ ->
             failwith
               (Printf.sprintf "%s exists and is not a socket; refusing to unlink it" path));
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind sock (Unix.ADDR_UNIX path);
         Unix.listen sock 64
       with Unix.Unix_error (e, _, _) ->
         close_quietly sock;
         failwith
           (Printf.sprintf "cannot listen on unix:%s: %s" path (Unix.error_message e)));
      sock
  | Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
            match
              Unix.getaddrinfo host ""
                [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
            with
            | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
            | _ | (exception Unix.Unix_error _) ->
                failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock (Unix.ADDR_INET (inet, port));
         Unix.listen sock 64
       with Unix.Unix_error (e, _, _) ->
         close_quietly sock;
         failwith
           (Printf.sprintf "cannot listen on tcp:%s:%d: %s" host port
              (Unix.error_message e)));
      sock

type conn = {
  fd : Unix.file_descr;
  frames : Protocol.Frames.t;
  out : Buffer.t;  (* bytes queued for this client *)
  mutable sent : int;  (* prefix of [out] already written *)
  mutable closed : bool;
}

let serve ?(stop = fun () -> false) t addr =
  let listener = bind_listener addr in
  Unix.set_nonblock listener;
  t.config.log (Printf.sprintf "listening on %s" (addr_to_string addr));
  let conns = ref ([] : conn list) in
  (* Queued jobs carry their enqueue time so serve.latency_us measures
     queue wait + compute, i.e. what the client experiences. *)
  let queue : (conn * Protocol.solve * float) Queue.t = Queue.create () in
  let read_buf = Bytes.create 65536 in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      close_quietly c.fd
    end
  in
  let flush_conn c =
    if (not c.closed) && Buffer.length c.out > c.sent then begin
      let contents = Buffer.contents c.out in
      let len = String.length contents - c.sent in
      match Unix.write_substring c.fd contents c.sent len with
      | n ->
          c.sent <- c.sent + n;
          if c.sent = String.length contents then begin
            Buffer.clear c.out;
            c.sent <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn c
    end
  in
  let respond c (resp : Protocol.response) =
    if not c.closed then begin
      Buffer.add_string c.out (Protocol.response_to_line resp);
      Buffer.add_char c.out '\n';
      if Buffer.length c.out - c.sent > 8 * t.config.max_frame then begin
        t.config.log "closing a slow consumer (unread responses exceeded 8*max-frame)";
        close_conn c
      end
      else flush_conn c
    end
  in
  let fabricate c id code msg =
    count_failure t code;
    respond c { Protocol.rid = id; reply = Protocol.Failed (code, msg) }
  in
  let on_line c line =
    match Protocol.request_of_line line with
    | Error (code, msg) -> fabricate c None code msg
    | Ok (Protocol.Solve s) ->
        if t.is_stopping then fabricate c s.id Shutting_down "server is draining"
        else if Queue.length queue >= t.config.queue_capacity then
          fabricate c s.id Overloaded
            (Printf.sprintf "job queue full (%d queued); retry later"
               (Queue.length queue))
        else begin
          Queue.add (c, s, Clock.now ()) queue;
          t.queue_depth <- Queue.length queue;
          Metrics.observe h_queue (float_of_int t.queue_depth)
        end
    | Ok req -> respond c (handle t req)
  in
  let read_conn c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn c
    | n ->
        List.iter
          (function
            | `Line line -> on_line c line
            | `Oversized bytes ->
                fabricate c None Too_large
                  (Printf.sprintf
                     "request line exceeded the %d-byte frame limit (got %d+ bytes)"
                     t.config.max_frame bytes))
          (Protocol.Frames.feed c.frames (Bytes.sub_string read_buf 0 n))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let accept_all () =
    let rec go () =
      match Unix.accept listener with
      | fd, _ ->
          Unix.set_nonblock fd;
          conns :=
            { fd; frames = Protocol.Frames.create ~max_frame:t.config.max_frame;
              out = Buffer.create 256; sent = 0; closed = false }
            :: !conns;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  (* Best-effort flush of everything still buffered, with a deadline —
     used at shutdown so clients receive their final responses. *)
  let drain_writes ~deadline =
    let rec go () =
      let pending =
        List.filter (fun c -> (not c.closed) && Buffer.length c.out > c.sent) !conns
      in
      if pending <> [] && Clock.now () < deadline then begin
        (match Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.05 with
        | _, w, _ ->
            List.iter (fun c -> if List.memq c.fd w then flush_conn c) pending
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    in
    go ()
  in
  let finalize () =
    Queue.iter
      (fun (c, (s : Protocol.solve), _) ->
        count_failure t Shutting_down;
        respond c { Protocol.rid = s.id; reply = Failed (Shutting_down, "server is draining") })
      queue;
    Queue.clear queue;
    t.queue_depth <- 0;
    drain_writes ~deadline:(Clock.now () +. 1.0);
    List.iter close_conn !conns;
    close_quietly listener;
    (match addr with
    | Unix_path path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    (match t.config.store with None -> () | Some store -> Store.sync store);
    t.config.log
      (Printf.sprintf "shutdown: %d requests, %d solved, %d cache hits, %d errors"
         t.requests t.solved t.cache_hits t.errors);
    stats t
  in
  let rec loop () =
    if stop () || t.is_stopping then finalize ()
    else begin
      conns := List.filter (fun c -> not c.closed) !conns;
      let rds = listener :: List.map (fun c -> c.fd) !conns in
      let wrs =
        List.filter_map
          (fun c -> if Buffer.length c.out > c.sent then Some c.fd else None)
          !conns
      in
      let timeout = if Queue.is_empty queue then 0.2 else 0.0 in
      (match Unix.select rds wrs [] timeout with
      | r, w, _ ->
          if List.memq listener r then accept_all ();
          List.iter (fun c -> if List.memq c.fd w then flush_conn c) !conns;
          List.iter (fun c -> if List.memq c.fd r then read_conn c) !conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (match Queue.take_opt queue with
      | None -> ()
      | Some (c, s, enqueued) ->
          t.queue_depth <- Queue.length queue;
          let resp = handle t (Protocol.Solve s) in
          Metrics.observe h_latency ((Clock.now () -. enqueued) *. 1e6);
          respond c resp);
      loop ()
    end
  in
  loop ()
