lib/hyper/random_netlist.mli: Gb_prng Hgraph
