test/test_models.ml: Alcotest Array Gbisect Helpers List Printf
