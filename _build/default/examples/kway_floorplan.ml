(* k-way min-cut placement by recursive bisection — the full classical
   flow the paper's VLSI motivation points at: split the chip in half,
   assign, recurse. After log2(k) levels each functional block lands in
   one of k regions; wires between regions are the routing cost.

   We partition a 32x32 grid (a circuit whose optimal cuts we know: a
   grid splits along straight lines) and a sparse planted netlist, then
   compare solvers and show the per-level cut decomposition.

   Run with:  dune exec examples/kway_floorplan.exe *)

let describe name graph ~k rng =
  Format.printf "%s into %d regions:@." name k;
  List.iter
    (fun (solver_name, algorithm) ->
      let result =
        Gbisect.Kway.partition ~k ~solver:(Gbisect.Kway.of_algorithm algorithm) rng graph
      in
      Gbisect.Kway.validate graph result;
      let sizes = Gbisect.Kway.part_sizes result in
      Format.printf "  %-5s total cut %4d  (levels: %s; region sizes %d..%d)@."
        solver_name result.Gbisect.Kway.total_cut
        (String.concat "+" (List.map string_of_int result.Gbisect.Kway.level_cuts))
        (Array.fold_left min max_int sizes)
        (Array.fold_left max 0 sizes))
    [ ("KL", `Kl); ("CKL", `Ckl); ("FM", `Fm); ("MLKL", `Multilevel) ]

let () =
  let rng = Gbisect.Rng.create ~seed:26 in

  (* A 32x32 grid: the ideal 4-way partition is the four 16x16
     quadrants, total cut = 2 * 32 = 64. *)
  describe "grid 32x32" (Gbisect.Classic.grid_of_side 32) ~k:4 rng;

  (* A sparse planted netlist where one-shot compaction matters. *)
  let params = Gbisect.Bregular.{ two_n = 1024; b = 8; d = 3 } in
  let netlist = Gbisect.Bregular.generate rng params in
  describe "gbreg(1024, 8, 3)" netlist ~k:8 rng;

  (* The placement picture: region ids are bit paths of the cuts, so
     regions 0..3 of the grid should map to spatial quadrants. Count
     how pure each quadrant of the actual grid is under the KL flow. *)
  let graph = Gbisect.Classic.grid_of_side 32 in
  let result =
    Gbisect.Kway.partition ~k:4 ~solver:(Gbisect.Kway.of_algorithm `Kl) rng graph
  in
  let majority = Hashtbl.create 4 in
  for r = 0 to 31 do
    for c = 0 to 31 do
      let quadrant = (2 * (r / 16)) + (c / 16) in
      let part = result.Gbisect.Kway.parts.((r * 32) + c) in
      let key = (quadrant, part) in
      Hashtbl.replace majority key (1 + Option.value ~default:0 (Hashtbl.find_opt majority key))
    done
  done;
  let pure = ref 0 in
  for q = 0 to 3 do
    let best = ref 0 in
    Hashtbl.iter (fun (q', _) c -> if q' = q && c > !best then best := c) majority;
    pure := !pure + !best
  done;
  Format.printf
    "spatial coherence: %d/1024 grid cells lie in their quadrant's majority region@."
    !pure
