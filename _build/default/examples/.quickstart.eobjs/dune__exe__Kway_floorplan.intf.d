examples/kway_floorplan.mli:
