test/test_compaction.ml: Alcotest Gbisect Helpers Printf
