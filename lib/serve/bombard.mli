(** Deterministic load generator for the serving daemon.

    [gbisect bombard] opens a pool of connections, issues a seeded mix
    of solve requests drawn from the fuzz-corpus generator families,
    replays a configurable fraction of them as repeat queries (which a
    healthy daemon answers from the result store), and reports
    throughput, latency percentiles and the cache hit rate as a
    schema-versioned artifact ([results/BENCH_serve.json]).

    The request {e plan} — which graphs, which algorithms, which
    requests are repeats — is a pure function of {!params.seed}, so two
    runs against equivalent servers issue byte-identical request lines.
    Wall-clock figures (latency, requests/sec) are of course
    machine-dependent; counts are not. *)

type params = {
  requests : int;  (** Total solve requests to issue (>= 1). *)
  concurrency : int;  (** Connections, one request in flight on each. *)
  repeat_ratio : float;  (** Fraction in [0,1] replaying an earlier job. *)
  starts : int;  (** Best-of-k starts attached to every job. *)
  seed : int;  (** Master seed for the whole plan. *)
  timeout_seconds : float;  (** Per-response deadline before the
                                connection is declared dead. *)
}

(* lint: allow dead-export — the record callers start from when they
   override one field of [params] *)
val default_params : params
(** 200 requests, 8 connections, repeat ratio 0.3, 1 start, seed 1,
    10 s timeout. *)

type outcome = {
  params : params;
  issued : int;  (** Requests actually written (= [requests] unless
                     connections died). *)
  solved : int;
  cache_hits : int;  (** Solved responses with [cached = true]. *)
  overloaded : int;  (** [overloaded] error responses (backpressure). *)
  errors : int;  (** Every other failure: protocol errors, timeouts,
                     dead connections, non-overload error codes. *)
  wall_seconds : float;
  requests_per_second : float;  (** [issued /. wall_seconds]. *)
  p50_ms : float;  (** Response latency percentiles, milliseconds. *)
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  families : (string * int) list;  (** Issued requests per generator
                                       family, plan order. *)
}

val run :
  ?log:(string -> unit) ->
  make_case:(seed:int -> (string * Gb_graph.Csr.t) option) ->
  params ->
  Server.addr ->
  outcome
(** [run ~make_case params addr] executes the plan against a live
    daemon. [make_case ~seed] supplies a (family, graph) pair for a
    derived seed, or [None] when that seed's graph is unusable (fewer
    than 2 vertices) — the planner then tries the next derived seed.
    The generator is injected (rather than calling [Gb_check] directly)
    to keep this library below the fuzz harness in the dependency
    order; the CLI passes [Gbisect.Fuzz_generators.generate].

    @raise Failure when no connection can be established, or when
    every connection dies before the plan completes.
    @raise Invalid_argument on nonsensical params (requests or
    concurrency < 1, repeat ratio outside [0,1]). *)

val to_json : outcome -> Gb_obs.Json.t
(** Schema-versioned artifact body for [results/BENCH_serve.json]:
    [schema_version], [suite = "serve"], host fingerprint, params,
    counts and latency figures. *)

val render : outcome -> string
(** Human-readable multi-line summary for the console. *)
