type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type finding = {
  file : string;
  line : int;
  rule : string;
  severity : severity;
  message : string;
  why : string list;
      (* call chain that makes an interprocedural finding reachable;
         [] for file-local rules *)
}

type rule = {
  name : string;
  r_severity : severity;
  summary : string;
  applies : string -> bool;
  check : file:string -> Tokenizer.t -> finding list;
}

(* ------------------------------------------------------------------ *)
(* Small helpers over the token stream                                 *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let normalize_path p = String.map (fun c -> if c = '\\' then '/' else c) p
let in_lib p = contains p "lib/"
let lib_impl p = in_lib p && Filename.check_suffix p ".ml"
let everywhere _ = true

let tk (r : Tokenizer.t) i =
  if i >= 0 && i < Array.length r.tokens then Some r.tokens.(i).tok else None

let line_of (r : Tokenizer.t) i = r.tokens.(i).line
let is_dot r i = tk r i = Some (Tokenizer.Sym ".")

(* Keywords that make the following [ident] a definition, not a use. *)
let definition_keywords = [ "let"; "and"; "rec"; "val"; "external"; "method"; "type" ]

let scan r f =
  let acc = ref [] in
  Array.iteri
    (fun i _ -> match f i with None -> () | Some x -> acc := x :: !acc)
    r.Tokenizer.tokens;
  List.rev !acc

(* A finding for the qualified access [Module.member] at token [i]
   (pointing at the module), when [member] satisfies [pick]. *)
let qualified_access r i ~modules ~pick =
  match tk r i with
  | Some (Tokenizer.Uident m) when List.mem m modules && is_dot r (i + 1) -> (
      match tk r (i + 2) with
      | Some (Tokenizer.Ident f) when pick f -> Some (line_of r i)
      | Some (Tokenizer.Uident _) when pick "" -> Some (line_of r i)
      | _ -> if pick "" then Some (line_of r i) else None)
  | _ -> None

let mk ~name ~severity ~summary ~applies ~message check =
  {
    name;
    r_severity = severity;
    summary;
    applies;
    check =
      (fun ~file r ->
        List.map
          (fun line -> { file; line; rule = name; severity; message; why = [] })
          (check r));
  }

(* ------------------------------------------------------------------ *)
(* The rules                                                           *)

let no_ambient_random =
  mk ~name:"no-ambient-random" ~severity:Error
    ~summary:"stdlib Random outside lib/prng (the sanctioned randomness provider)"
    ~applies:everywhere
    ~message:
      "ambient Random.* bypasses the seeded Gb_prng.Rng streams, so results stop \
       being reproducible from the run's seed; draw from an Rng.t handed down the \
       call chain"
    (fun r ->
      scan r (fun i -> qualified_access r i ~modules:[ "Random" ] ~pick:(fun _ -> true)))

let wall_clock_members = [ "time"; "gettimeofday"; "localtime"; "gmtime" ]

let no_wall_clock =
  mk ~name:"no-wall-clock" ~severity:Error
    ~summary:"direct Sys.time / Unix.gettimeofday outside Gb_obs.Clock"
    ~applies:everywhere
    ~message:
      "direct wall-clock read; route timing through Gb_obs.Clock so replayed and \
       resumed runs stay byte-identical (executables install the real clock into \
       Clock at startup, under a pragma)"
    (fun r ->
      scan r (fun i ->
          qualified_access r i ~modules:[ "Sys"; "Unix" ]
            ~pick:(fun f -> List.mem f wall_clock_members)))

let no_marshal =
  mk ~name:"no-marshal" ~severity:Error
    ~summary:"Marshal anywhere (representation-dependent bytes)"
    ~applies:everywhere
    ~message:
      "Marshal bytes depend on compiler version and architecture, so nothing \
       persisted or hashed from them is reproducible; encode canonical JSON via \
       Gb_obs.Json instead"
    (fun r ->
      scan r (fun i ->
          match tk r i with
          | Some (Tokenizer.Uident "Marshal") when is_dot r (i + 1) -> Some (line_of r i)
          | _ -> None))

let hash_members = [ "hash"; "seeded_hash"; "hash_param"; "seeded_hash_param" ]

let no_hashtbl_hash =
  mk ~name:"no-hashtbl-hash" ~severity:Error
    ~summary:"Hashtbl.hash and friends (representation-dependent hashing)"
    ~applies:everywhere
    ~message:
      "Hashtbl.hash hashes the in-memory representation (it traverses closures' \
       environments, changes across versions, and collides structurally-equal \
       values that differ in sharing); derive keys from an explicit canonical \
       encoding"
    (fun r ->
      scan r (fun i ->
          qualified_access r i ~modules:[ "Hashtbl" ]
            ~pick:(fun f -> List.mem f hash_members)))

let no_poly_compare =
  mk ~name:"no-poly-compare" ~severity:Error
    ~summary:"bare polymorphic compare in sorts/folds"
    ~applies:everywhere
    ~message:
      "bare polymorphic compare orders whatever the value's runtime representation \
       happens to be; spell the order out (Int.compare, Float.compare, \
       String.compare, or an explicit comparator) so a type change cannot silently \
       reorder results"
    (fun r ->
      scan r (fun i ->
          match tk r i with
          | Some (Tokenizer.Ident "compare") -> (
              let prev = tk r (i - 1) and next = tk r (i + 1) in
              match prev with
              | Some (Tokenizer.Sym ".") ->
                  (* Module-qualified: only Stdlib.compare is the
                     polymorphic one. *)
                  if tk r (i - 2) = Some (Tokenizer.Uident "Stdlib") then
                    Some (line_of r i)
                  else None
              | Some (Tokenizer.Sym "~") | Some (Tokenizer.Sym "?") ->
                  None (* labelled argument or parameter *)
              | Some (Tokenizer.Ident k) when List.mem k definition_keywords -> None
              | _ ->
                  if next = Some (Tokenizer.Sym ":") then None
                    (* label or signature declaration *)
                  else Some (line_of r i))
          | _ -> None))

(* Printf-style conversion ending in a float conversion letter. *)
let has_float_conversion s =
  let n = String.length s in
  let is_flag = function
    | '0' .. '9' | '-' | '+' | ' ' | '#' | '.' | '*' -> true
    | _ -> false
  in
  (* %h/%H hex floats are exact (round-trippable), so they are not
     lossy and are deliberately not flagged — profile fingerprints use
     them for that reason. *)
  let is_float_letter = function
    | 'f' | 'F' | 'e' | 'E' | 'g' | 'G' -> true
    | _ -> false
  in
  let rec at i =
    if i >= n - 1 then false
    else if s.[i] <> '%' then at (i + 1)
    else if s.[i + 1] = '%' then at (i + 2)
    else begin
      let j = ref (i + 1) in
      while !j < n && is_flag s.[!j] do
        incr j
      done;
      if !j < n && is_float_letter s.[!j] then true
      else if !j < n && s.[!j] = '%' then at !j
      else at (!j + 1)
    end
  in
  at 0

let no_float_format =
  mk ~name:"no-float-format" ~severity:Warning
    ~summary:"float printf conversions in lib/ outside the canonical printer"
    ~applies:in_lib
    ~message:
      "float printf conversion in library code; Gb_obs.Json owns shortest-round-trip \
       float rendering (a lossy rendering that leaks into stored or replayed data \
       breaks byte-identity; fixed-precision display strings need a pragma saying \
       they are display-only)"
    (fun r ->
      scan r (fun i ->
          match tk r i with
          | Some (Tokenizer.Str s) when has_float_conversion s -> Some (line_of r i)
          | _ -> None))

let stdout_idents =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "stdout";
  ]

let no_stdout_in_lib =
  mk ~name:"no-stdout-in-lib" ~severity:Error
    ~summary:"printing to stdout from library code"
    ~applies:in_lib
    ~message:
      "library code must not write to stdout (tables and results are values; \
       executables own presentation and the exit-code contract); return a string or \
       take a writer"
    (fun r ->
      scan r (fun i ->
          match tk r i with
          | Some (Tokenizer.Ident id) when List.mem id stdout_idents ->
              if is_dot r (i - 1) then None else Some (line_of r i)
          | Some (Tokenizer.Uident ("Printf" | "Format")) when is_dot r (i + 1) -> (
              match tk r (i + 2) with
              | Some (Tokenizer.Ident ("printf" | "print_string" | "std_formatter")) ->
                  Some (line_of r i)
              | _ -> None)
          | _ -> None))

let no_exit_in_lib =
  mk ~name:"no-exit-in-lib" ~severity:Error
    ~summary:"exit from library code"
    ~applies:in_lib
    ~message:
      "library code must not call exit; raise (Failure/Invalid_argument) and let \
       the executable map the failure onto the documented exit-code contract"
    (fun r ->
      scan r (fun i ->
          match tk r i with
          | Some (Tokenizer.Ident "exit") -> (
              match tk r (i - 1) with
              | Some (Tokenizer.Sym ".") ->
                  if tk r (i - 2) = Some (Tokenizer.Uident "Stdlib") then
                    Some (line_of r i)
                  else None
              | Some (Tokenizer.Sym "~") | Some (Tokenizer.Sym "?") -> None
              | Some (Tokenizer.Ident k) when List.mem k definition_keywords -> None
              | _ ->
                  if tk r (i + 1) = Some (Tokenizer.Sym ":") then None
                  else Some (line_of r i))
          | _ -> None))

(* Top-level [let x = ref ...] / [let x = Hashtbl.create ...] in
   library implementations. Detection is token-shaped: a column-0
   [let] binding a plain name (no parameters) whose body mentions a
   bare [ref] or [Hashtbl.create] before any [fun]/[function] — i.e. a
   mutable cell created once at module init, visible to every domain. *)
let structure_keywords =
  [ "let"; "and"; "module"; "type"; "open"; "include"; "exception"; "class"; "external"; "val"; "end" ]

let no_naked_mutable_global =
  mk ~name:"no-naked-mutable-global" ~severity:Error
    ~summary:"top-level ref / Hashtbl.create in lib/ without Atomic, a guard, or a pragma"
    ~applies:lib_impl
    ~message:
      "top-level mutable state in library code is shared by every domain; make it \
       Atomic, or guard every access with a mutex and say so in a pragma — a plain \
       ref is a data race the moment two domains touch it"
    (fun r ->
      let t = r.Tokenizer.tokens in
      let n = Array.length t in
      let item_end i =
        let rec next j =
          if j >= n then n
          else
            match t.(j).Tokenizer.tok with
            | Tokenizer.Ident k when t.(j).Tokenizer.col = 0 && List.mem k structure_keywords
              ->
                j
            | _ -> next (j + 1)
        in
        next (i + 1)
      in
      let findings = ref [] in
      let i = ref 0 in
      while !i < n do
        (match t.(!i).Tokenizer.tok with
        | Tokenizer.Ident ("let" | "and") when t.(!i).Tokenizer.col = 0 ->
            let stop = item_end !i in
            let k = if tk r (!i + 1) = Some (Tokenizer.Ident "rec") then !i + 2 else !i + 1 in
            (match (tk r k, tk r (k + 1)) with
            | Some (Tokenizer.Ident _), (Some (Tokenizer.Sym "=") | Some (Tokenizer.Sym ":"))
              ->
                (* A value binding. Scan only the right-hand side —
                   after the [=] that ends the head — so a [ref] in a
                   type annotation (e.g. a DLS key carrying refs,
                   which is domain-local by construction) does not
                   fire. *)
                let rec rhs_start j =
                  if j >= stop then stop
                  else if t.(j).Tokenizer.tok = Tokenizer.Sym "=" then j + 1
                  else rhs_start (j + 1)
                in
                let rec body j =
                  if j >= stop then ()
                  else
                    match t.(j).Tokenizer.tok with
                    | Tokenizer.Ident ("fun" | "function") -> ()
                    | Tokenizer.Ident "ref" when not (is_dot r (j - 1)) ->
                        findings := t.(!i).Tokenizer.line :: !findings
                    | Tokenizer.Uident "Hashtbl"
                      when is_dot r (j + 1) && tk r (j + 2) = Some (Tokenizer.Ident "create")
                      ->
                        findings := t.(!i).Tokenizer.line :: !findings
                    | _ -> body (j + 1)
                in
                body (rhs_start (k + 1))
            | _ -> ());
            i := stop
        | _ -> incr i)
      done;
      List.rev !findings)

let all =
  [
    no_ambient_random;
    no_wall_clock;
    no_marshal;
    no_hashtbl_hash;
    no_poly_compare;
    no_float_format;
    no_stdout_in_lib;
    no_exit_in_lib;
    no_naked_mutable_global;
  ]

(* ------------------------------------------------------------------ *)
(* Whole-program (interprocedural) rules. The checks live in
   [Graph_rules] over the [Program] call graph; the catalogue lives
   here so [known_rule], pragmas and [lint --rules] cover one rule
   namespace. *)

type program_rule = { p_name : string; p_severity : severity; p_summary : string }

let program_rules =
  [
    {
      p_name = "par-unsafe-state";
      p_severity = Error;
      p_summary =
        "non-atomic mutable global reached (transitively) from a parallel region";
    };
    {
      p_name = "par-ambient-rng";
      p_severity = Error;
      p_summary = "ambient Random reachable from a parallel worker";
    };
    {
      p_name = "par-wall-clock";
      p_severity = Error;
      p_summary = "direct wall-clock read reachable from a parallel worker";
    };
    {
      p_name = "rng-stream-discipline";
      p_severity = Error;
      p_summary =
        "function taking an Rng.t also creates a second ambient stream";
    };
    {
      p_name = "dead-export";
      p_severity = Warning;
      p_summary = "mli-exported value with no reference outside its module";
    };
  ]

let program_rule_name name =
  List.exists (fun r -> String.equal r.p_name name) program_rules

let known_rule name =
  List.exists (fun r -> String.equal r.name name) all || program_rule_name name

(* ------------------------------------------------------------------ *)
(* Config allowlist: the module that owns an effect may use it.        *)

let allowlist =
  [
    (* The PRNG core is the one sanctioned randomness provider (it
       wraps its own lagged-Fibonacci generator, but may legitimately
       reference stdlib Random, e.g. for seeding comparisons), and the
       one module allowed to mint derived streams from raw seeds. *)
    ("lib/prng/", [ "no-ambient-random"; "par-ambient-rng"; "rng-stream-discipline" ]);
    (* The pluggable clock's default source is CPU time. *)
    ("lib/obs/clock.ml", [ "no-wall-clock"; "par-wall-clock" ]);
    (* Owns shortest-round-trip float rendering. *)
    ("lib/obs/json.ml", [ "no-float-format" ]);
    (* Examples are interactive demos outside the determinism
       contract: they print to a human, commit no artifacts, and
       time themselves however is clearest on the page. They are
       scanned by lint --program (as users of the public API) but
       keep their casual clocks. *)
    ("examples/", [ "no-wall-clock"; "par-wall-clock" ]);
  ]

let allowlisted path rule_name =
  List.exists
    (fun (fragment, rules) -> contains path fragment && List.mem rule_name rules)
    allowlist

(* ------------------------------------------------------------------ *)
(* Inline pragmas: (* lint: allow <rule>[, <rule>] — reason *)         *)

type pragma = {
  p_start : int;
  p_end : int;
  p_rules : string list;
  mutable p_used : bool;
}

let strip_stars s =
  (* Tolerate doc-comment leaders: "(** lint: ... *)" lexes with a
     leading '*'. *)
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = '*' || s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n') do
    incr i
  done;
  String.sub s !i (n - !i)

let words s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c) s)
  |> List.filter (fun w -> w <> "")

let is_reason_separator w = w = "\xe2\x80\x94" (* em dash *) || w = "-" || w = "--"

let meta ~file ~line message =
  { file; line; rule = "pragma"; severity = Error; message; why = [] }

(* Parse one comment; [None] if it is not a lint pragma at all. *)
let parse_pragma ~file (c : Tokenizer.comment) : (pragma option * finding list) option =
  let text = strip_stars c.Tokenizer.c_text in
  let prefixed prefix =
    String.length text >= String.length prefix
    && String.sub text 0 (String.length prefix) = prefix
  in
  if not (prefixed "lint:") then None
  else
    let line = c.Tokenizer.c_start in
    let rest = String.sub text 5 (String.length text - 5) in
    match words rest with
    | "allow" :: more ->
        let rec split_rules acc = function
          | [] -> (List.rev acc, None)
          | w :: tl when is_reason_separator w -> (List.rev acc, Some tl)
          | w :: tl ->
              let w =
                if String.length w > 0 && w.[String.length w - 1] = ',' then
                  String.sub w 0 (String.length w - 1)
                else w
              in
              split_rules (w :: acc) tl
        in
        let rules, reason = split_rules [] more in
        let problems = ref [] in
        List.iter
          (fun rl ->
            if not (known_rule rl) then
              problems :=
                meta ~file ~line
                  (Printf.sprintf "lint pragma names unknown rule %S" rl)
                :: !problems)
          rules;
        if rules = [] then
          problems := meta ~file ~line "lint pragma lists no rules" :: !problems;
        (match reason with
        | Some (_ :: _) -> ()
        | Some [] | None ->
            problems :=
              meta ~file ~line
                "lint pragma needs a justification: (* lint: allow <rule> \xe2\x80\x94 \
                 reason *)"
              :: !problems);
        if !problems <> [] then Some (None, List.rev !problems)
        else
          Some
            ( Some
                {
                  p_start = c.Tokenizer.c_start;
                  p_end = c.Tokenizer.c_end;
                  p_rules = rules;
                  p_used = false;
                },
              [] )
    | directive :: _ ->
        Some
          ( None,
            [ meta ~file ~line (Printf.sprintf "unknown lint pragma directive %S" directive) ]
          )
    | [] -> Some (None, [ meta ~file ~line "empty lint pragma" ])

let compare_findings a b =
  match Int.compare a.line b.line with
  | 0 -> String.compare a.rule b.rule
  | c -> c

(* The name of the nearest enclosing top-level binding ([let]/[val]/
   [external] at column 0) on or above [line] — so a staleness warning
   can say where to look without the reader opening the file. *)
let enclosing_binding (lexed : Tokenizer.t) line =
  let t = lexed.Tokenizer.tokens in
  let best = ref None in
  Array.iteri
    (fun i p ->
      match p.Tokenizer.tok with
      | Tokenizer.Ident (("let" | "val" | "external") as kw)
        when p.Tokenizer.col = 0 && p.Tokenizer.line <= line ->
          let j =
            if tk lexed (i + 1) = Some (Tokenizer.Ident "rec") then i + 2 else i + 1
          in
          (match tk lexed j with
          | Some (Tokenizer.Ident name) when name <> "open" ->
              best := Some (kw, name)
          | _ -> ())
      | _ -> ())
    t;
  !best

type scanned = {
  s_file : string;
  s_lexed : Tokenizer.t;
  s_raw : finding list;  (** file-local rule findings, allowlist applied *)
  s_pragmas : pragma list;
  s_pragma_problems : finding list;
}

let scan_source ~file source =
  let path = normalize_path file in
  let lexed = Tokenizer.tokenize source in
  let raw =
    List.concat_map
      (fun r -> if r.applies path then r.check ~file lexed else [])
      all
  in
  let raw = List.filter (fun f -> not (allowlisted path f.rule)) raw in
  let pragmas = ref [] and pragma_findings = ref [] in
  List.iter
    (fun c ->
      match parse_pragma ~file c with
      | None -> ()
      | Some (p, probs) ->
          (match p with Some p -> pragmas := p :: !pragmas | None -> ());
          pragma_findings := !pragma_findings @ probs)
    lexed.Tokenizer.comments;
  {
    s_file = file;
    s_lexed = lexed;
    s_raw = raw;
    s_pragmas = List.rev !pragmas;
    s_pragma_problems = !pragma_findings;
  }

(* Does [p] allow [rule] at [line]? Covers the pragma's own lines and
   the line after it, like inline suppression always has. *)
let pragma_covers p ~rule ~line =
  List.mem rule p.p_rules && line >= p.p_start && line <= p.p_end + 1

let pragma_mark_used p = p.p_used <- true
let pragma_line p = p.p_start
let pragma_rules p = p.p_rules

(* Merge [extra] (interprocedural findings attributed to this file)
   with the file-local scan, apply inline pragmas, and account for
   stale pragmas. In file-local mode ([program = false]) a pragma that
   names only whole-program rules is not reported unused: those rules
   can only fire under [lint --program], which owns the accounting. *)
let apply_pragmas ?(program = false) scanned ~extra =
  let path = normalize_path scanned.s_file in
  let extra = List.filter (fun f -> not (allowlisted path f.rule)) extra in
  let suppressed f =
    List.exists
      (fun p ->
        if pragma_covers p ~rule:f.rule ~line:f.line then begin
          p.p_used <- true;
          true
        end
        else false)
      scanned.s_pragmas
  in
  let kept = List.filter (fun f -> not (suppressed f)) (scanned.s_raw @ extra) in
  let unused =
    List.filter_map
      (fun p ->
        let program_only = List.for_all program_rule_name p.p_rules in
        if p.p_used || ((not program) && program_only) then None
        else
          let where =
            match enclosing_binding scanned.s_lexed p.p_start with
            | Some (kw, name) -> Printf.sprintf " near `%s %s`" kw name
            | None -> ""
          in
          Some
            {
              file = scanned.s_file;
              line = p.p_start;
              rule = "pragma";
              severity = Warning;
              message =
                Printf.sprintf
                  "unused lint pragma%s (allows %s but nothing it names fires here)"
                  where
                  (String.concat ", " p.p_rules);
              why = [];
            })
      scanned.s_pragmas
  in
  List.sort compare_findings (kept @ scanned.s_pragma_problems @ unused)

let check_source ~file source =
  apply_pragmas (scan_source ~file source) ~extra:[]
