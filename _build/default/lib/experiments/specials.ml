module Classic = Gb_graph.Classic

(* Paper ladder tables list node counts up to ~5000; we use 2 x k
   ladders. Optimal bisection width is 2 (one cut between rungs ...
   actually 1 when cutting the two rails between adjacent rungs? No:
   cutting a 2 x k ladder into two contiguous halves severs the two
   rails, cut = 2). *)
let ladder_sizes = [ 600; 1200; 2400; 3600; 5000 ]
let grid_sides = [ 16; 24; 32; 48; 70 ]
let tree_depths = [ 8; 9; 10; 11; 12 ]

let ladder_rows profile =
  List.map
    (fun nodes ->
      let k = Profile.scaled profile nodes / 2 in
      {
        Paper_table.label = Printf.sprintf "ladder 2x%d" k;
        expected = "2";
        replicate_factor = 3;
        make = (fun _rng -> Classic.ladder k);
      })
    ladder_sizes

let grid_rows profile =
  List.map
    (fun side ->
      let side' =
        let target = Profile.scaled profile (side * side) in
        max 4 (int_of_float (Float.round (sqrt (float_of_int target))))
      in
      {
        Paper_table.label = Printf.sprintf "grid %dx%d" side' side';
        expected = string_of_int side';
        replicate_factor = 3;
        make = (fun _rng -> Classic.grid_of_side side');
      })
    grid_sides

let tree_rows profile =
  List.map
    (fun depth ->
      let nodes d = (1 lsl (d + 1)) - 1 in
      let depth' =
        (* Largest depth whose size fits the scaled target. *)
        let target = Profile.scaled profile (nodes depth) in
        let rec fit d = if d <= 3 || nodes d <= target then d else fit (d - 1) in
        fit depth
      in
      {
        Paper_table.label = Printf.sprintf "btree %d" (nodes depth');
        expected = "1";
        replicate_factor = 3;
        make = (fun _rng -> Classic.binary_tree ~depth:depth');
      })
    tree_depths

let notes profile =
  [
    Printf.sprintf "profile %s: best of %d random starts per algorithm" profile.Profile.name
      profile.Profile.starts;
    "times are wall-clock seconds (paper: VAX 780 CPU minutes)";
  ]

let ladder_table profile =
  Paper_table.run profile ~title:"Ladder graphs (paper appendix, E-A1)"
    ~notes:(notes profile) ~seed_tag:"ladder" (ladder_rows profile)

let grid_table profile =
  Paper_table.run profile ~title:"Grid graphs (paper appendix, E-A2)" ~notes:(notes profile)
    ~seed_tag:"grid" (grid_rows profile)

let tree_table profile =
  Paper_table.run profile ~title:"Binary trees (paper appendix, E-A3)"
    ~notes:(notes profile) ~seed_tag:"tree" (tree_rows profile)

(* Table 1: family-averaged relative improvement of compaction. *)
let table1 profile =
  let family name rows seed_tag =
    let data = Paper_table.collect profile ~seed_tag rows in
    let imprs quad_of =
      Table.mean
        (List.map
           (fun { Paper_table.quad; _ } ->
             let base, improved = quad_of quad in
             Table.improvement_pct
               ~base:(float_of_int base.Runner.cut)
               ~improved:(float_of_int improved.Runner.cut))
           data)
    in
    let kl = imprs (fun q -> (q.Runner.bkl, q.Runner.bckl)) in
    let sa = imprs (fun q -> (q.Runner.bsa, q.Runner.bcsa)) in
    [ name; Table.pct_cell kl; Table.pct_cell sa ]
  in
  let rows =
    [
      family "Grid" (grid_rows profile) "grid";
      family "Ladder" (ladder_rows profile) "ladder";
      family "Binary Tree" (tree_rows profile) "tree";
    ]
  in
  Table.render
    ~title:
      "Table 1. Bisection width improvement made by compaction. Best of two starts (E-T1)"
    ~notes:(notes profile)
    ~header:[ "Graph type"; "over KL"; "over SA" ]
    rows
