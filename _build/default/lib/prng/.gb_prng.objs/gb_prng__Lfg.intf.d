lib/prng/lfg.mli:
