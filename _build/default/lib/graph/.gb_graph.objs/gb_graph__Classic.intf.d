lib/graph/classic.mli: Csr
