lib/compaction/compaction.mli: Gb_anneal Gb_graph Gb_kl Gb_partition Gb_prng
