module Rng = Gb_prng.Rng
module Bisection = Gb_partition.Bisection
module Bregular = Gb_models.Bregular

let instance profile =
  let two_n = Profile.scaled profile 2000 in
  let params = Bregular.{ two_n; b = 16; d = 3 } in
  let params = { params with Bregular.b = Bregular.nearest_feasible_b params } in
  let rng =
    Rng.create ~seed:(Rng.seed_of_string (Printf.sprintf "%d/figures" profile.Profile.master_seed))
  in
  (Bregular.generate rng params, params.Bregular.b, rng)

(* Cut after each pass = initial cut minus the prefix sums of pass gains. *)
let cut_series initial_cut pass_gains =
  let running = ref (float_of_int initial_cut) in
  float_of_int initial_cut
  :: List.map
       (fun g ->
         running := !running -. float_of_int g;
         !running)
       pass_gains

let kl_passes profile =
  let g, b, rng = instance profile in
  let start = Gb_partition.Initial.random rng g in
  let _, stats = Gb_kl.Kl.refine g start in
  let flat = cut_series stats.Gb_kl.Kl.initial_cut stats.Gb_kl.Kl.pass_gains in
  (* compacted start *)
  let matching = Gb_graph.Matching.random_maximal rng g in
  let contraction = Gb_graph.Contraction.contract g matching in
  let coarse = contraction.Gb_graph.Contraction.coarse in
  let coarse_side, _ = Gb_kl.Kl.refine coarse (Gb_partition.Initial.random rng coarse) in
  let projected =
    Bisection.rebalance g (Gb_graph.Contraction.project_to_fine contraction coarse_side)
  in
  let _, cstats = Gb_kl.Kl.refine g projected in
  let compacted = cut_series cstats.Gb_kl.Kl.initial_cut cstats.Gb_kl.Kl.pass_gains in
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: KL cut vs pass, Gbreg(%d, %d, 3) — random start (planted cut %d)"
         (Gb_graph.Csr.n_vertices g) b b)
    ~y_label:"cut" ~x_label:"pass" flat
  ^ Ascii_chart.render
      ~title:"          same instance — compacted (CKL) start"
      ~y_label:"cut" ~x_label:"pass" compacted

let sa_temperatures profile =
  let g, b, rng = instance profile in
  let series = ref [] in
  let trace ~temperature:_ ~acceptance:_ ~best_cost = series := best_cost :: !series in
  let config =
    { Gb_anneal.Sa_bisect.default_config with schedule = profile.Profile.sa_schedule }
  in
  let _ = Gb_anneal.Sa_bisect.run ~config ~trace rng g in
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: SA best cost vs temperature index, Gbreg(%d, %d, 3)"
         (Gb_graph.Csr.n_vertices g) b)
    ~y_label:"best cost" ~x_label:"temperature index" (List.rev !series)

let multilevel_levels profile =
  let g, b, rng = instance profile in
  (* Instrument recursion by hand: coarsen fully, then refine up,
     recording the cut at each level. *)
  let refiner = Gb_compaction.Compaction.kl_refiner ~config:profile.Profile.kl_config () in
  let rec coarsen acc g =
    if Gb_graph.Csr.n_vertices g <= 64 then (acc, g)
    else begin
      let m = Gb_graph.Matching.random_maximal rng g in
      let c = Gb_graph.Contraction.contract g m in
      let coarse = c.Gb_graph.Contraction.coarse in
      if 10 * Gb_graph.Csr.n_vertices coarse > 9 * Gb_graph.Csr.n_vertices g then (acc, g)
      else coarsen ((g, c) :: acc) coarse
    end
  in
  let chain, coarsest = coarsen [] g in
  let side = ref (refiner rng coarsest (Gb_partition.Initial.random rng coarsest)) in
  let cuts = ref [ float_of_int (Bisection.compute_cut coarsest !side) ] in
  let current = ref coarsest in
  List.iter
    (fun (fine, contraction) ->
      let projected = Gb_graph.Contraction.project_to_fine contraction !side in
      let start = Bisection.rebalance fine projected in
      side := refiner rng fine start;
      cuts := float_of_int (Bisection.compute_cut fine !side) :: !cuts;
      current := fine)
    chain;
  ignore !current;
  Ascii_chart.render
    ~title:
      (Printf.sprintf
         "Figure: multilevel (recursive compaction) cut per level, Gbreg(%d, %d, 3) — \
          coarsest to finest"
         (Gb_graph.Csr.n_vertices g) b)
    ~y_label:"cut after refinement" ~x_label:"level" (List.rev !cuts)

let figures profile =
  kl_passes profile ^ "\n" ^ sa_temperatures profile ^ "\n" ^ multilevel_levels profile
