(** Replica-exchange (parallel-tempering) simulated annealing for graph
    bisection — the intra-run SA parallelism the 1989 authors could not
    attempt.

    [K] tempered chains run the paper's Metropolis dynamics over the
    {!Gb_anneal.Sa_bisect.Problem} search space (single-vertex flips,
    cut plus a quadratic imbalance penalty), each at a {e fixed}
    temperature from a geometric ladder, fanned out on the ambient
    {!Gb_par.Pool}. After every round, adjacent slots (alternating
    parity per round, as in Myklebust arXiv:1505.03068) exchange
    configurations with the standard Metropolis swap probability
    [min(1, exp((β_a − β_b)(E_a − E_b)))], so low-energy states migrate
    toward the cold end of the ladder while hot chains keep tunnelling.

    {b Determinism contract} (see PARALLELISM.md): the orchestrator
    draws exactly two derived bases from the caller's stream — one
    family of substreams seeds the chains, the other the per-round swap
    decisions. Chain [k] draws only from [substream ~base:chain_base k]
    and touches only its own slot, and the swap phase is sequential, so
    the result, every chain's accepted-move trajectory and all counters
    are byte-identical at any [--jobs] value. The fuzz oracles and
    [test_race] lock this down. *)

type config = {
  chains : int;  (** [K >= 1]; slot 0 is the hottest. *)
  rounds : int;  (** Swap rounds ([>= 1]). *)
  sweeps_per_round : int;
      (** Each chain proposes [sweeps_per_round * n] moves per round. *)
  max_temperature : float;  (** Ladder top (slot 0). *)
  min_temperature : float;  (** Ladder bottom (slot [K-1]); [> 0]. *)
  imbalance_factor : float;  (** Quadratic penalty weight; [> 0]. *)
}

val default_config : config
(** 4 chains, 12 rounds, 2 sweeps/round, ladder 4.0 → 0.25,
    imbalance factor 0.05 (JAMS). *)

val temperature_ladder : config -> float array
(** The geometric ladder the chains run at, hottest first.
    @raise Invalid_argument on an invalid config. *)

type stats = {
  chains : int;
  rounds : int;
  temperatures : float array;
  attempted : int;  (** Moves proposed, all chains. *)
  accepted : int;
  swaps_attempted : int;
  swaps_accepted : int;
  best_chain : int;  (** Slot index that produced the returned bisection. *)
  best_was_snapshot : bool;
      (** [true]: the tracked balanced snapshot won; [false]: a
          rebalanced final state did. *)
  trajectories : int array array;
      (** Per slot, the accepted vertex flips in order; [[||]] unless
          [run ~record:true]. *)
}

val run :
  ?config:config ->
  ?record:bool ->
  Gb_prng.Rng.t ->
  Gb_graph.Csr.t ->
  Gb_partition.Bisection.t * stats
(** Run the tempered ensemble; returns the best balanced bisection over
    all slots (best cut, ties to the lowest slot index, snapshot
    preferred over rebalanced final on a tie within a slot).
    [~record:true] additionally keeps every chain's accepted-move
    trajectory — the fuzz replica-exchange oracle replays these.
    @raise Invalid_argument on an invalid config. *)
