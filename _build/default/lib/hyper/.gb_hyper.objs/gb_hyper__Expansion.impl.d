lib/hyper/expansion.ml: Array Float Gb_graph Hgraph
