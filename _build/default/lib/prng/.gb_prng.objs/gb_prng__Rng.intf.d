lib/prng/rng.mli: Lfg
