(* Tests for the compaction heuristic: the five-step scheme, CKL/CSA,
   refiner combinators and the recursive (multilevel) extension. *)

module Graph = Gbisect.Graph
module Classic = Gbisect.Classic
module Bisection = Gbisect.Bisection
module Compaction = Gbisect.Compaction
module Bregular = Gbisect.Bregular
module Rng = Gbisect.Rng

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let kl = Compaction.kl_refiner ()
let fm = Compaction.fm_refiner ()

let sa_quick =
  Compaction.sa_refiner
    ~config:{ Gbisect.Sa_bisect.default_config with schedule = Gbisect.Schedule.quick }
    ()

let bisect_tests =
  [
    case "stats describe a genuine coarsening" (fun () ->
        let g = Classic.grid ~rows:8 ~cols:8 in
        let b, stats = Compaction.bisect ~refiner:kl (Helpers.rng ()) g in
        Helpers.check_bisection_consistent g b;
        check_int "fine n" 64 stats.Compaction.fine_vertices;
        check_bool "shrank" true (stats.Compaction.coarse_vertices < 64);
        check_bool "at least half" true (stats.Compaction.coarse_vertices >= 32);
        check_int "levels" 1 stats.Compaction.levels;
        check_int "final cut matches" (Bisection.cut b) stats.Compaction.final_cut);
    case "coarse average degree rises on sparse graphs (paper §V)" (fun () ->
        let params = Bregular.{ two_n = 400; b = 8; d = 3 } in
        let g = Bregular.generate (Helpers.rng ()) params in
        let _, stats = Compaction.bisect ~refiner:kl (Helpers.rng ()) g in
        check_bool
          (Printf.sprintf "coarse deg %.2f > 3" stats.Compaction.coarse_average_degree)
          true
          (stats.Compaction.coarse_average_degree > 3.0));
    case "result is balanced" (fun () ->
        let g = Classic.ladder 31 in
        (* odd rung count, 62 vertices *)
        let b, _ = Compaction.bisect ~refiner:kl (Helpers.rng ()) g in
        check_bool "balanced" true (Bisection.is_balanced b));
    case "refinement can only improve the projected start" (fun () ->
        for seed = 1 to 10 do
          let g = Classic.grid ~rows:6 ~cols:8 in
          let _, stats = Compaction.bisect ~refiner:kl (Helpers.rng ~seed ()) g in
          check_bool "final <= projected" true
            (stats.Compaction.final_cut <= stats.Compaction.projected_cut)
        done);
    case "CKL recovers the planted cut where KL fails (Obs 2)" (fun () ->
        (* Degree-3 planted graphs defeat plain KL most of the time but
           CKL finds the plant; run a handful of seeds and require CKL
           to win on average by a wide margin. *)
        let params = Bregular.{ two_n = 600; b = 4; d = 3 } in
        let kl_total = ref 0 and ckl_total = ref 0 in
        for seed = 1 to 6 do
          let g = Bregular.generate (Helpers.rng ~seed ()) params in
          let r = Helpers.rng ~seed:(100 + seed) () in
          let bkl, _ = Gbisect.Kl.run r g in
          let bckl, _ = Compaction.ckl r g in
          kl_total := !kl_total + Bisection.cut bkl;
          ckl_total := !ckl_total + Bisection.cut bckl
        done;
        check_bool
          (Printf.sprintf "CKL total %d << KL total %d" !ckl_total !kl_total)
          true
          (!ckl_total * 2 <= !kl_total || !ckl_total <= 6 * 6));
    case "CSA runs and is balanced" (fun () ->
        let params = Bregular.{ two_n = 200; b = 4; d = 3 } in
        let g = Bregular.generate (Helpers.rng ()) params in
        let b, _ =
          Compaction.csa
            ~config:
              { Gbisect.Sa_bisect.default_config with schedule = Gbisect.Schedule.quick }
            (Helpers.rng ()) g
        in
        check_bool "balanced" true (Bisection.is_balanced b));
    case "heavy-edge policy also works" (fun () ->
        let g = Classic.grid ~rows:8 ~cols:8 in
        let b, _ =
          Compaction.bisect ~policy:Compaction.Heavy_edge_matching ~refiner:kl
            (Helpers.rng ()) g
        in
        check_bool "balanced" true (Bisection.is_balanced b));
    case "fm refiner plugs in" (fun () ->
        let g = Classic.grid ~rows:8 ~cols:8 in
        let b, _ = Compaction.bisect ~refiner:fm (Helpers.rng ()) g in
        check_bool "balanced" true (Bisection.is_balanced b));
    case "matching maximality bounds the coarse size" (fun () ->
        (* A maximal matching on a connected graph matches at least one
           of every adjacent pair, so the coarse graph has at most
           n - matching_size vertices and at least n/2. *)
        for seed = 1 to 10 do
          let g = Gbisect.Gnp.generate (Helpers.rng ~seed ()) ~n:100 ~p:0.08 in
          let _, stats = Compaction.bisect ~refiner:kl (Helpers.rng ~seed ()) g in
          check_bool "at least half" true (2 * stats.Compaction.coarse_vertices >= 100);
          check_bool "no growth" true (stats.Compaction.coarse_vertices <= 100)
        done);
    case "deterministic given the seed" (fun () ->
        let g = Bregular.generate (Helpers.rng ()) Bregular.{ two_n = 300; b = 8; d = 3 } in
        let run seed = Bisection.cut (fst (Compaction.ckl (Helpers.rng ~seed ()) g)) in
        check_int "same result" (run 3) (run 3));
    case "edgeless graphs compact to a zero cut" (fun () ->
        let g = Graph.empty 8 in
        let b, _ = Compaction.bisect ~refiner:kl (Helpers.rng ()) g in
        check_int "cut 0" 0 (Bisection.cut b);
        check_bool "balanced" true (Bisection.is_balanced b));
  ]

let recursive_tests =
  [
    case "multilevel reaches the floor and refines back" (fun () ->
        let g = Classic.grid ~rows:16 ~cols:16 in
        let b, stats =
          Compaction.recursive ~min_vertices:32 ~refiner:kl (Helpers.rng ()) g
        in
        Helpers.check_bisection_consistent g b;
        check_bool "balanced" true (Bisection.is_balanced b);
        check_bool "several levels" true (stats.Compaction.levels >= 3);
        check_bool "coarsest small" true (stats.Compaction.coarse_vertices <= 64);
        check_int "fine n" 256 stats.Compaction.fine_vertices);
    case "multilevel solves sparse planted instances" (fun () ->
        let params = Bregular.{ two_n = 600; b = 4; d = 3 } in
        let ok = ref 0 in
        for seed = 1 to 5 do
          let g = Bregular.generate (Helpers.rng ~seed ()) params in
          let b, _ = Compaction.recursive ~refiner:kl (Helpers.rng ~seed ()) g in
          if Bisection.cut b <= 8 then incr ok
        done;
        check_bool (Printf.sprintf "near-planted on %d/5" !ok) true (!ok >= 4));
    case "max_levels caps the hierarchy" (fun () ->
        let g = Classic.grid ~rows:16 ~cols:16 in
        let _, stats =
          Compaction.recursive ~min_vertices:2 ~max_levels:2 ~refiner:kl (Helpers.rng ()) g
        in
        check_bool "at most 3 levels" true (stats.Compaction.levels <= 3));
    case "min_vertices below 2 rejected" (fun () ->
        let g = Classic.path 4 in
        Alcotest.check_raises "min_vertices"
          (Invalid_argument "Compaction.recursive: min_vertices < 2") (fun () ->
            ignore (Compaction.recursive ~min_vertices:1 ~refiner:kl (Helpers.rng ()) g)));
    case "tiny graphs skip coarsening gracefully" (fun () ->
        let g = Classic.path 6 in
        let b, stats = Compaction.recursive ~refiner:kl (Helpers.rng ()) g in
        check_int "single level" 1 stats.Compaction.levels;
        check_bool "balanced" true (Bisection.is_balanced b));
    case "observer sees every uncoarsening, coarsest-first" (fun () ->
        let g = Classic.grid ~rows:16 ~cols:16 in
        let seen = ref [] in
        let observer ~level ~fine ~coarse ~coarse_side ~projected ~rebalanced =
          seen := level :: !seen;
          (* projection preserves the cut: the projected fine sides
             cut exactly what the coarse sides cut *)
          check_int "projected cut = coarse cut"
            (Bisection.cut (Bisection.of_sides coarse coarse_side))
            (Bisection.cut (Bisection.of_sides fine projected));
          (* and the rebalanced start handed to the refiner is balanced *)
          check_bool "rebalanced is balanced" true
            (Bisection.is_balanced (Bisection.of_sides fine rebalanced))
        in
        let _, stats =
          Compaction.recursive ~min_vertices:32 ~observer ~refiner:kl (Helpers.rng ())
            g
        in
        check_int "one call per uncoarsening"
          (stats.Compaction.levels - 1)
          (List.length !seen);
        check_bool "levels run 1..levels-1 coarsest-first" true
          (List.rev !seen = List.init (stats.Compaction.levels - 1) (fun i -> i + 1)));
    case "coarse_starts = 1 is the default result" (fun () ->
        let g = Classic.grid ~rows:12 ~cols:12 in
        let run k =
          Bisection.cut
            (fst (Compaction.recursive ~coarse_starts:k ~refiner:kl (Helpers.rng ()) g))
        in
        check_int "identical" (run 1) (run 1);
        let b1, _ = Compaction.recursive ~refiner:kl (Helpers.rng ()) g in
        let b2, _ = Compaction.recursive ~coarse_starts:1 ~refiner:kl (Helpers.rng ()) g in
        check_bool "byte-identical sides" true
          (Bisection.sides b1 = Bisection.sides b2));
    case "coarse_starts > 1 stays valid and balanced" (fun () ->
        let g = Classic.grid ~rows:12 ~cols:12 in
        let b, _ =
          Compaction.recursive ~coarse_starts:4 ~refiner:kl (Helpers.rng ()) g
        in
        Helpers.check_bisection_consistent g b;
        check_bool "balanced" true (Bisection.is_balanced b));
    case "coarse_starts < 1 rejected" (fun () ->
        Alcotest.check_raises "coarse_starts"
          (Invalid_argument "Compaction.recursive: coarse_starts < 1") (fun () ->
            ignore
              (Compaction.recursive ~coarse_starts:0 ~refiner:kl (Helpers.rng ())
                 (Classic.path 8))));
  ]

let compaction_properties =
  [
    Helpers.qtest ~count:100 "bisect returns balanced bisections"
      (Helpers.gen_even_graph ~max_n:24 ()) (fun g ->
        let b, _ = Compaction.bisect ~refiner:kl (Helpers.rng ()) g in
        Bisection.is_balanced b);
    Helpers.qtest ~count:100 "recursive returns balanced bisections"
      (Helpers.gen_even_graph ~max_n:24 ()) (fun g ->
        let b, _ = Compaction.recursive ~min_vertices:4 ~refiner:kl (Helpers.rng ()) g in
        Bisection.is_balanced b);
    Helpers.qtest ~count:60 "CKL never beats the exact width"
      (Helpers.gen_even_graph ~max_n:14 ()) (fun g ->
        let opt = Gbisect.Exact.bisection_width g in
        let b, _ = Compaction.ckl (Helpers.rng ()) g in
        Bisection.cut b >= opt);
    Helpers.qtest ~count:100 "sa refiner keeps balance through compaction"
      (Helpers.gen_even_graph ~max_n:16 ()) (fun g ->
        let b, _ = Compaction.bisect ~refiner:sa_quick (Helpers.rng ()) g in
        Bisection.is_balanced b);
  ]

let () =
  Alcotest.run "compaction"
    [
      ("bisect", bisect_tests);
      ("recursive", recursive_tests);
      ("properties", compaction_properties);
    ]
