(** Plain-text netlist serialisation.

    Format (one hypergraph per file):

    {v
    # comment
    <n_vertices> <n_nets>
    <v1> <v2> ... <vk>     one line per net, 0-based vertex ids
    v}

    This is the hypergraph sibling of the edge-list format in
    {!Gb_graph.Gio}; the hMETIS format is also readable (1-based,
    header "[nets n]" — note the reversed header order!). *)

val to_string : Hgraph.t -> string
val of_string : string -> Hgraph.t
(** @raise Failure with a line-numbered message on malformed input. *)

val write : string -> Hgraph.t -> unit
val read : string -> Hgraph.t

val of_hmetis_string : string -> Hgraph.t
(** Parse the unweighted hMETIS format: header "[n_nets n_vertices]",
    then one 1-based net line per net.
    @raise Failure on malformed input. *)

val to_hmetis_string : Hgraph.t -> string
