examples/kway_floorplan.ml: Array Format Gbisect Hashtbl List Option String
